package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blockpar/internal/apps"
	"blockpar/internal/core"
	"blockpar/internal/frame"
	"blockpar/internal/machine"
	"blockpar/internal/runtime"
	"blockpar/internal/serve"
	"blockpar/internal/transform"
	"blockpar/internal/wire"
)

// fastOpts shrinks every interval so reconnection, health checks, and
// breaker transitions happen within test patience.
func fastOpts() DispatcherOptions {
	return DispatcherOptions{
		PingInterval:    25 * time.Millisecond,
		PingTimeout:     3 * time.Second,
		ReconnectMin:    10 * time.Millisecond,
		ReconnectMax:    50 * time.Millisecond,
		BreakerFailures: 3,
		BreakerCooldown: 300 * time.Millisecond,
		OpenTimeout:     30 * time.Second,
		CloseTimeout:    30 * time.Second,
	}
}

// openN opens a session with an n-frame in-flight window and no
// deadline — the shape almost every test wants.
func openN(d *Dispatcher, p *serve.Pipeline, n int) (serve.SessionHandle, error) {
	return d.Open(p, serve.OpenOptions{MaxInFlight: n})
}

func suiteRegistry(t *testing.T, ids ...string) *serve.Registry {
	t.Helper()
	reg := serve.NewRegistry(machine.Embedded())
	if err := reg.AddSuite(ids...); err != nil {
		t.Fatal(err)
	}
	return reg
}

// batchFrames computes the batch-runtime golden for an app, compiled
// exactly like the registry compiles it.
func batchFrames(t *testing.T, app *apps.App, frames int) map[string][][]frame.Window {
	t.Helper()
	c, err := core.Compile(app.Graph.Clone(), core.Config{
		Machine:        machine.Embedded(),
		Align:          transform.Trim,
		Parallelize:    true,
		BufferStriping: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(c.Graph, runtime.Options{Frames: frames, Sources: app.Sources})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][][]frame.Window)
	for _, o := range c.Graph.Outputs() {
		out[o.Name()] = res.FrameSlices(o.Name())
	}
	return out
}

// streamCluster runs `frames` worker-generated frames through a
// cluster session and compares each against the batch golden.
func streamCluster(d *Dispatcher, p *serve.Pipeline, frames int, want map[string][][]frame.Window) error {
	h, err := openN(d, p, frames)
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	return streamSession(h, frames, want)
}

// streamSession drives an already-open handle and closes it.
func streamSession(h serve.SessionHandle, frames int, want map[string][][]frame.Window) error {
	for f := 0; f < frames; f++ {
		if _, err := h.TryFeed(nil); err != nil {
			h.Close()
			return fmt.Errorf("feed %d: %w", f, err)
		}
	}
	for f := 0; f < frames; f++ {
		res, err := h.Collect(30 * time.Second)
		if err != nil {
			h.Close()
			return fmt.Errorf("collect %d: %w", f, err)
		}
		if res.Seq != int64(f) {
			h.Close()
			return fmt.Errorf("collect %d: result tagged frame %d", f, res.Seq)
		}
		if len(res.Outputs) != len(want) {
			h.Close()
			return fmt.Errorf("frame %d: %d outputs, want %d", f, len(res.Outputs), len(want))
		}
		for name, perFrame := range want {
			got := res.Outputs[name]
			if len(got) != len(perFrame[f]) {
				h.Close()
				return fmt.Errorf("frame %d output %q: %d windows, want %d", f, name, len(got), len(perFrame[f]))
			}
			for i, w := range perFrame[f] {
				if !got[i].Equal(w) {
					h.Close()
					return fmt.Errorf("frame %d output %q window %d differs from batch golden", f, name, i)
				}
			}
		}
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
	}
	return h.Close()
}

// TestClusterSuiteGoldens is the acceptance bar: every Figure 13 app
// streamed through the full wire path — frontend dispatcher, TCP
// loopback, worker-side session — produces frames byte-identical to the
// batch runtime, with poisoning and the zero-copy plane on (see
// poison_test.go). The worker starts with an empty registry, so the
// test also covers EnsurePipeline's suite compilation.
func TestClusterSuiteGoldens(t *testing.T) {
	frontend := suiteRegistry(t)
	worker := NewWorker(serve.NewRegistry(machine.Embedded()), WorkerOptions{Name: "golden"})
	d, stop, err := Loopback(worker, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	const frames = 2
	var wg sync.WaitGroup
	errs := make(chan error, len(apps.IDs()))
	for _, id := range apps.IDs() {
		app, err := apps.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		want := batchFrames(t, app, frames)
		p, ok := frontend.Get(id)
		if !ok {
			t.Fatalf("pipeline %q missing from frontend registry", id)
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if err := streamCluster(d, p, frames, want); err != nil {
				errs <- fmt.Errorf("pipeline %s: %w", id, err)
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	stats := d.BackendStats().(map[string]any)["workers"].([]WorkerStats)
	if len(stats) != 1 {
		t.Fatalf("got %d worker rows, want 1", len(stats))
	}
	s := stats[0]
	if s.State != "connected" || s.Breaker != "closed" {
		t.Errorf("worker row %+v, want connected/closed", s)
	}
	if s.FramesRouted == 0 || s.ResultsReceived == 0 {
		t.Errorf("worker row %+v, want nonzero traffic counters", s)
	}
	if s.Name != "golden" {
		t.Errorf("worker name %q, want %q", s.Name, "golden")
	}
}

// TestClusterExplicitInputs feeds client-supplied windows (the wire
// codec's window path end to end) and checks against the batch golden
// with the same explicit inputs.
func TestClusterExplicitInputs(t *testing.T) {
	reg := suiteRegistry(t, "5")
	p, _ := reg.Get("5")
	worker := NewWorker(reg, WorkerOptions{})
	d, stop, err := Loopback(worker, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	app, err := apps.ByID("5")
	if err != nil {
		t.Fatal(err)
	}
	// The explicit input replays what the app source would generate, so
	// the batch golden (which uses the sources) stays the reference.
	in := p.Graph().Inputs()[0]
	gen := app.Sources[in.Name()]
	if gen == nil {
		gen = frame.Gradient
	}
	want := batchFrames(t, app, 2)

	h, err := openN(d, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for f := int64(0); f < 2; f++ {
		win := gen(f, in.FrameSize.W, in.FrameSize.H)
		if _, err := h.TryFeed(map[string]frame.Window{in.Name(): win}); err != nil {
			t.Fatalf("feed %d: %v", f, err)
		}
		res, err := h.Collect(30 * time.Second)
		if err != nil {
			t.Fatalf("collect %d: %v", f, err)
		}
		for name, perFrame := range want {
			for i, w := range perFrame[f] {
				if !res.Outputs[name][i].Equal(w) {
					t.Fatalf("frame %d output %q window %d differs", f, name, i)
				}
			}
		}
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
	}

	// Bad frames bounce locally with the runtime's error vocabulary.
	if _, err := h.TryFeed(map[string]frame.Window{"nope": frame.NewWindow(1, 1)}); !errors.Is(err, runtime.ErrBadFrame) {
		t.Errorf("unknown input: got %v, want ErrBadFrame", err)
	}
	if _, err := h.TryFeed(map[string]frame.Window{in.Name(): frame.NewWindow(1, 1)}); !errors.Is(err, runtime.ErrBadFrame) {
		t.Errorf("wrong dims: got %v, want ErrBadFrame", err)
	}
}

// TestClusterBackpressure checks the credit protocol surfaces exactly
// the local backpressure signal: maxInFlight uncollected frames block
// the next feed with ErrQueueFull, and collecting reopens the slot.
func TestClusterBackpressure(t *testing.T) {
	reg := suiteRegistry(t, "5")
	p, _ := reg.Get("5")
	worker := NewWorker(reg, WorkerOptions{})
	d, stop, err := Loopback(worker, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	h, err := openN(d, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.TryFeed(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.TryFeed(nil); !errors.Is(err, runtime.ErrQueueFull) {
		t.Fatalf("feed past maxInFlight=1: got %v, want ErrQueueFull", err)
	}
	res, err := h.Collect(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, ws := range res.Outputs {
		for _, w := range ws {
			w.Release()
		}
	}
	// The credit may still be in flight right after collect; it must
	// arrive promptly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err = h.TryFeed(nil); err == nil {
			break
		}
		if !errors.Is(err, runtime.ErrQueueFull) || time.Now().After(deadline) {
			t.Fatalf("feed after collect: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if res, err := h.Collect(30 * time.Second); err != nil {
		t.Fatal(err)
	} else {
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
	}

	// With nothing in flight, a bounded collect times out with the
	// "timed out" phrasing the HTTP layer maps to 504.
	if _, err := h.Collect(10 * time.Millisecond); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("collect with nothing in flight: got %v, want timeout", err)
	}
}

// waitCondition polls until ok or the deadline.
func waitCondition(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func workerRows(d *Dispatcher) map[string]WorkerStats {
	rows := d.BackendStats().(map[string]any)["workers"].([]WorkerStats)
	out := make(map[string]WorkerStats, len(rows))
	for _, r := range rows {
		out[r.Addr] = r
	}
	return out
}

// TestClusterWorkerFailureIsolated is the failure-semantics acceptance
// test with failover disabled (ReplayBudget < 0): with sessions spread
// over two workers, killing one mid-stream fails exactly its own
// sessions — with a typed serve.ErrSessionLost naming the worker — the
// frontend keeps serving and placing on the survivor, the dead worker's
// breaker opens, and a worker rejoining at the same address is accepted
// and used again. (Failover-enabled recovery is covered in
// failover_test.go.)
func TestClusterWorkerFailureIsolated(t *testing.T) {
	reg1 := suiteRegistry(t, "5")
	reg2 := suiteRegistry(t, "5")
	w1 := NewWorker(reg1, WorkerOptions{Name: "w1"})
	w2 := NewWorker(reg2, WorkerOptions{Name: "w2"})
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1, addr2 := ln1.Addr().String(), ln2.Addr().String()
	go w1.Serve(ln1)
	go w2.Serve(ln2)
	defer w1.Close()
	defer w2.Close()

	opts := fastOpts()
	opts.ReplayBudget = -1 // isolated-failure semantics: no failover
	d := NewDispatcher([]string{addr1, addr2}, opts)
	defer d.Close()
	waitCondition(t, "both workers connected", func() bool {
		rows := workerRows(d)
		return rows[addr1].State == "connected" && rows[addr2].State == "connected"
	})

	frontend := suiteRegistry(t, "5")
	p, _ := frontend.Get("5")

	// Least-loaded placement spreads two sessions over the two workers.
	hA, err := openN(d, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	hB, err := openN(d, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	sA, sB := hA.(*remoteSession), hB.(*remoteSession)
	addrA, addrB := sA.workerAddr(), sB.workerAddr()
	if addrA == addrB {
		t.Fatalf("both sessions placed on %s; want them spread", addrA)
	}

	feedCollect := func(h serve.SessionHandle) error {
		if _, err := h.TryFeed(nil); err != nil {
			return err
		}
		res, err := h.Collect(30 * time.Second)
		if err != nil {
			return err
		}
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
		return nil
	}
	if err := feedCollect(hA); err != nil {
		t.Fatalf("session A healthy stream: %v", err)
	}
	if err := feedCollect(hB); err != nil {
		t.Fatalf("session B healthy stream: %v", err)
	}

	// Kill session A's worker mid-stream.
	victim, victimName := w1, "w1"
	if addrA == addr2 {
		victim, victimName = w2, "w2"
	}
	if _, err := hA.TryFeed(nil); err != nil {
		t.Fatal(err)
	}
	victim.Close()

	// A's stream fails with a typed ErrSessionLost naming its worker...
	_, err = hA.Collect(10 * time.Second)
	if err == nil {
		t.Fatal("collect on killed worker's session succeeded")
	}
	if !errors.Is(err, serve.ErrSessionLost) {
		t.Errorf("failure error %q, want serve.ErrSessionLost", err)
	}
	if !strings.Contains(err.Error(), addrA) && !strings.Contains(err.Error(), victimName) {
		t.Errorf("failure error %q does not name worker %s (%s)", err, victimName, addrA)
	}
	if _, err := hA.TryFeed(nil); err == nil || errors.Is(err, runtime.ErrQueueFull) {
		t.Errorf("feed on failed session: got %v, want terminal error", err)
	}
	hA.Close()

	// ...while B and new placements keep working.
	if err := feedCollect(hB); err != nil {
		t.Fatalf("survivor session after kill: %v", err)
	}
	hC, err := openN(d, p, 2)
	if err != nil {
		t.Fatalf("open after worker death: %v", err)
	}
	if got := hC.(*remoteSession).workerAddr(); got != addrB {
		t.Errorf("new session placed on dead worker %s", got)
	}
	if err := feedCollect(hC); err != nil {
		t.Fatalf("new session after kill: %v", err)
	}
	hC.Close()

	// The dead worker's breaker opens after repeated reconnect failures.
	waitCondition(t, "breaker open on dead worker", func() bool {
		return workerRows(d)[addrA].Breaker == "open"
	})

	// Rejoin at the same address: the dispatcher reconnects and places
	// sessions there again.
	var reg3 *serve.Registry
	reg3 = suiteRegistry(t, "5")
	w3 := NewWorker(reg3, WorkerOptions{Name: victimName + "-rejoined"})
	var ln3 net.Listener
	waitCondition(t, "rebind worker address", func() bool {
		ln3, err = net.Listen("tcp", addrA)
		return err == nil
	})
	go w3.Serve(ln3)
	defer w3.Close()
	waitCondition(t, "rejoined worker connected", func() bool {
		r := workerRows(d)[addrA]
		return r.State == "connected" && r.Breaker == "closed"
	})
	if rows := workerRows(d); rows[addrA].Reconnects == 0 {
		t.Errorf("rejoined worker row %+v, want nonzero reconnects", rows[addrA])
	}

	// B still holds a session on the survivor, so the least-loaded
	// choice is the rejoined worker.
	hD, err := openN(d, p, 2)
	if err != nil {
		t.Fatalf("open after rejoin: %v", err)
	}
	if got := hD.(*remoteSession).workerAddr(); got != addrA {
		t.Errorf("post-rejoin session placed on %s, want rejoined %s", got, addrA)
	}
	if err := feedCollect(hD); err != nil {
		t.Fatalf("stream on rejoined worker: %v", err)
	}
	hD.Close()
	if err := hB.Close(); err != nil {
		t.Errorf("survivor close: %v", err)
	}
}

// TestClusterWorkerDrain checks -drain semantics end to end: Shutdown
// lets every fed frame finish and flush its result before sessions
// close, and the frontend sees the drain notice, not a connection
// error.
func TestClusterWorkerDrain(t *testing.T) {
	reg := suiteRegistry(t, "5")
	p, _ := reg.Get("5")
	worker := NewWorker(reg, WorkerOptions{})
	d, stop, err := Loopback(worker, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	h, err := openN(d, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 3; f++ {
		if _, err := h.TryFeed(nil); err != nil {
			t.Fatalf("feed %d: %v", f, err)
		}
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- worker.Shutdown(ctx)
	}()

	// All three in-flight frames must still arrive.
	for f := int64(0); f < 3; f++ {
		res, err := h.Collect(30 * time.Second)
		if err != nil {
			t.Fatalf("collect %d during drain: %v", f, err)
		}
		if res.Seq != f {
			t.Fatalf("collect during drain: frame %d, want %d", res.Seq, f)
		}
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("drain shutdown: %v", err)
	}

	// The session ends with the drain notice and refuses further feeds.
	waitCondition(t, "session to observe drain close", func() bool {
		_, err := h.TryFeed(nil)
		return err != nil && !errors.Is(err, runtime.ErrQueueFull)
	})
	if _, err := h.TryFeed(nil); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Errorf("feed after drain: got %v, want draining notice", err)
	}
	h.Close()
}

// TestClusterConcurrentFeeders hammers one session from several
// goroutines, the access pattern serve's /frames handler produces. The
// session's send lock must keep Feed frames in Seq order on the wire —
// the worker tears the session down on any sequence gap — so every
// frame must complete in order with no session failure.
func TestClusterConcurrentFeeders(t *testing.T) {
	reg := suiteRegistry(t, "5")
	p, _ := reg.Get("5")
	worker := NewWorker(reg, WorkerOptions{})
	d, stop, err := Loopback(worker, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	const frames, feeders = 128, 8
	h, err := openN(d, p, 16)
	if err != nil {
		t.Fatal(err)
	}
	var next atomic.Int64
	errc := make(chan error, feeders)
	var wg sync.WaitGroup
	for i := 0; i < feeders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= frames {
				for {
					if _, err := h.TryFeed(nil); err == nil {
						break
					} else if !errors.Is(err, runtime.ErrQueueFull) {
						errc <- err
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	for f := int64(0); f < frames; f++ {
		res, err := h.Collect(30 * time.Second)
		if err != nil {
			t.Fatalf("collect %d: %v", f, err)
		}
		if res.Seq != f {
			t.Fatalf("collect %d returned frame %d", f, res.Seq)
		}
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("feeder: %v", err)
	}
	if err := h.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// TestClusterFeedReleasesPooledInputs checks the cluster handle honors
// the runtime Feed ownership contract: pooled input windows handed to a
// successful TryFeed belong to the transport, which releases them once
// their samples are encoded. Every arena reference the stream created
// must return after the session closes.
func TestClusterFeedReleasesPooledInputs(t *testing.T) {
	reg := suiteRegistry(t, "5")
	p, _ := reg.Get("5")
	worker := NewWorker(reg, WorkerOptions{})
	d, stop, err := Loopback(worker, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	in := p.Graph().Inputs()[0]
	base := frame.Stats().Live
	h, err := openN(d, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for f := int64(0); f < 2; f++ {
		win := frame.Alloc(in.FrameSize.W, in.FrameSize.H)
		if !win.Pooled() {
			t.Skip("input shape outside the arena's bucket range")
		}
		if _, err := h.TryFeed(map[string]frame.Window{in.Name(): win}); err != nil {
			t.Fatalf("feed %d: %v", f, err)
		}
		res, err := h.Collect(30 * time.Second)
		if err != nil {
			t.Fatalf("collect %d: %v", f, err)
		}
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	waitCondition(t, "arena references to return to baseline", func() bool {
		return frame.Stats().Live <= base
	})
}

// fakeWorker serves the wire protocol with scripted per-message
// behavior, for failure modes the real Worker cannot produce on demand.
// Pings are always answered so health checks stay green.
func fakeWorker(t *testing.T, handle func(c *wire.Conn, m wire.Msg)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			c := wire.NewConn(nc)
			if err := c.AcceptHandshake("fake", nil); err != nil {
				c.Close()
				continue
			}
			go func() {
				defer c.Close()
				for {
					m, err := c.Read()
					if err != nil {
						return
					}
					if p, ok := m.(*wire.Ping); ok {
						c.Write(&wire.Pong{Nonce: p.Nonce})
						continue
					}
					handle(c, m)
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestClusterEnsureRetryAfterTimeout: a worker that never answers the
// first EnsurePipeline must not wedge later ensures of the same
// pipeline — the timed-out waiter leaves the list, so the next open
// sends a fresh request instead of waiting behind the dead one.
func TestClusterEnsureRetryAfterTimeout(t *testing.T) {
	reg := suiteRegistry(t, "5")
	p, _ := reg.Get("5")
	var ensures atomic.Int64
	addr := fakeWorker(t, func(c *wire.Conn, m wire.Msg) {
		switch m := m.(type) {
		case *wire.EnsurePipeline:
			if ensures.Add(1) == 1 {
				return // swallow the first request
			}
			c.Write(&wire.PipelineReady{ID: m.ID})
		case *wire.OpenSession:
			c.Write(&wire.SessionOpened{SID: m.SID})
		case *wire.CloseSession:
			c.Write(&wire.SessionClosed{SID: m.SID})
		}
	})
	opts := fastOpts()
	opts.OpenTimeout = 200 * time.Millisecond
	d := NewDispatcher([]string{addr}, opts)
	defer d.Close()
	if err := d.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := openN(d, p, 1); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("open with swallowed ensure: got %v, want ensure timeout", err)
	}
	h, err := openN(d, p, 1)
	if err != nil {
		t.Fatalf("open after ensure timeout: %v", err)
	}
	if n := ensures.Load(); n != 2 {
		t.Errorf("worker saw %d ensure requests, want 2", n)
	}
	if err := h.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// TestClusterUnsolicitedCloseDuringOpen: a SessionClosed racing right
// behind the SessionOpened reply must still reach the session — it is
// registered before OpenSession hits the wire — so Close surfaces the
// worker's failure immediately instead of burning the full CloseTimeout.
func TestClusterUnsolicitedCloseDuringOpen(t *testing.T) {
	reg := suiteRegistry(t, "5")
	p, _ := reg.Get("5")
	addr := fakeWorker(t, func(c *wire.Conn, m wire.Msg) {
		switch m := m.(type) {
		case *wire.EnsurePipeline:
			c.Write(&wire.PipelineReady{ID: m.ID})
		case *wire.OpenSession:
			c.Write(&wire.SessionOpened{SID: m.SID})
			c.Write(&wire.SessionClosed{SID: m.SID, Err: "synthetic immediate failure"})
		}
	})
	d := NewDispatcher([]string{addr}, fastOpts())
	defer d.Close()
	if err := d.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	h, err := openN(d, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = h.Close()
	if err == nil || !strings.Contains(err.Error(), "synthetic immediate failure") {
		t.Fatalf("close after unsolicited SessionClosed: got %v, want the worker's failure", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("close took %v; the unsolicited SessionClosed was dropped", elapsed)
	}
}

// TestDispatcherUnavailable checks placement failure maps to
// serve.ErrUnavailable (HTTP 503) when no worker is reachable.
func TestDispatcherUnavailable(t *testing.T) {
	reg := suiteRegistry(t, "5")
	p, _ := reg.Get("5")
	opts := fastOpts()
	opts.Dial = func(addr string) (net.Conn, error) {
		return nil, errors.New("synthetic dial failure")
	}
	d := NewDispatcher([]string{"127.0.0.1:1"}, opts)
	defer d.Close()
	if _, err := openN(d, p, 1); !errors.Is(err, serve.ErrUnavailable) {
		t.Fatalf("open with no workers: got %v, want ErrUnavailable", err)
	}
	if err := d.WaitReady(30 * time.Millisecond); err == nil {
		t.Fatal("WaitReady succeeded with no reachable worker")
	}
}
