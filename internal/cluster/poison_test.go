package cluster

import "blockpar/internal/frame"

// The cluster tests run with use-after-release poisoning on: any
// ownership mistake across the wire boundary turns into NaNs that the
// golden comparisons catch immediately.
func init() { frame.SetPoison(true) }
