package graph

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/token"
)

// Item is one element of a stream channel: either a data window or a
// control token (paper §II-C: control tokens travel in-band, in order,
// on the same streams as the data).
//
// A data item may additionally be a row batch (B.N > 1): one physical
// delivery standing for N consecutive logical items of the stream. The
// executor guarantees non-batch-aware consumers never observe batches
// (it splits them back into N view items at the edge), so the logical
// stream — the sequence the oracle, goldens, and wire protocol see —
// is identical with batching on or off.
type Item struct {
	IsToken bool
	Tok     token.Token
	Win     frame.Window
	// B describes the row batch this item carries; the zero value (and
	// any N <= 1) means a plain single-window item.
	B Batch
}

// Batch describes how one wide single-plane window packs N consecutive
// logical windows of a stream: logical window j is the Bw-column view
// of Win starting at element column j*Sx (all windows share Win's
// height). Overlapping windows (convolution inputs: Sx < Bw) and
// concatenated outputs (Sx == Bw) both fit this shape, which is what
// lets a whole row of kernel firings travel as one channel delivery and
// run as one bounds-check-hoisted inner loop.
type Batch struct {
	// N is the number of logical windows; 0 or 1 means "not a batch".
	N int32
	// Sx is the element step between consecutive logical windows.
	Sx int32
	// Bw is the width of each logical window.
	Bw int32
}

// IsBatch reports whether the descriptor packs more than one window.
func (b Batch) IsBatch() bool { return b.N > 1 }

// SpanW returns the window width a batch of this shape occupies.
func (b Batch) SpanW() int { return int(b.N-1)*int(b.Sx) + int(b.Bw) }

// Window returns the j-th logical window as a view sharing win's
// storage (and pooled backing, if any).
func (b Batch) Window(win frame.Window, j int) frame.Window {
	return win.View(j*int(b.Sx), 0, int(b.Bw), win.H)
}

// DataItem wraps a window as a stream item.
func DataItem(w frame.Window) Item { return Item{Win: w} }

// BatchItem wraps a window carrying a row batch as a stream item. The
// window's width must equal b.SpanW(); N <= 1 degrades to DataItem.
func BatchItem(w frame.Window, b Batch) Item {
	if !b.IsBatch() {
		return Item{Win: w}
	}
	if w.W != b.SpanW() {
		panic(fmt.Sprintf("graph: batch %+v needs a %d-wide window, got %dx%d", b, b.SpanW(), w.W, w.H))
	}
	return Item{Win: w, B: b}
}

// TokenItem wraps a control token as a stream item.
func TokenItem(t token.Token) Item { return Item{IsToken: true, Tok: t} }

// BatchN returns the number of logical stream items this physical item
// stands for (1 for tokens and plain data items).
func (it Item) BatchN() int {
	if !it.IsToken && it.B.IsBatch() {
		return int(it.B.N)
	}
	return 1
}

// Words returns the channel words this item occupies (tokens cost one
// word of signalling).
func (it Item) Words() int64 {
	if it.IsToken {
		return 1
	}
	return int64(it.Win.W * it.Win.H)
}

func (it Item) String() string {
	if it.IsToken {
		return it.Tok.String()
	}
	if it.B.IsBatch() {
		return fmt.Sprintf("%s[batch %dx%dw step %d]", it.Win, it.B.N, it.B.Bw, it.B.Sx)
	}
	return it.Win.String()
}

// RunContext is the channel-level execution interface handed to Runner
// kernels (buffers, splits, joins, insets, pads, replicates): kernels
// whose firing rules are a finite state machine over the stream rather
// than the simple "all trigger inputs have an item" rule. Recv blocks;
// Send blocks on a full downstream channel.
type RunContext interface {
	// Recv returns the next item on the named input; ok is false once
	// the channel is closed and drained.
	Recv(input string) (it Item, ok bool)
	// Send writes an item to the named output, fanning out to every
	// connected consumer.
	Send(output string, it Item)
	// Node returns the node being executed.
	Node() *Node
}

// Runner is implemented by Behaviors that drive their own stream FSM
// instead of the generic method-trigger loop. The runtime calls Run
// once; Run returns when its inputs are exhausted.
type Runner interface {
	Behavior
	Run(ctx RunContext) error
}

// RunnerBehavior reports whether the node's behavior wants FSM-style
// execution.
func RunnerBehavior(n *Node) (Runner, bool) {
	r, ok := n.Behavior.(Runner)
	return r, ok
}

// ErrHalt can be returned by a Runner to stop cleanly before input
// exhaustion (used by sinks with a frame budget).
var ErrHalt = fmt.Errorf("graph: runner halted")
