package transform

import (
	"fmt"
	"sort"

	"blockpar/internal/analysis"
	"blockpar/internal/frame"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
)

// InsertConversions propagates element kinds (analysis.ElemKinds) and
// splices an explicit conversion kernel onto every edge whose consumer
// rejects the arriving kind — the element-type analogue of buffer
// insertion. The target kind is the narrowest kind the consumer accepts
// that the arriving kind widens into exactly; if no exact widening
// exists, the widest accepted kind (an explicit narrowing conversion,
// e.g. f64 results displayed on a u8 sink).
//
// It must run before InsertBuffers: a conversion kernel works on 1×1
// sample streams, and converting upstream of the buffer means the
// buffered rows are already in the consumer's native kind.
func InsertConversions(g *graph.Graph) error {
	for pass := 0; pass < 4; pass++ {
		r, err := analysis.ElemKinds(g)
		if err != nil {
			return err
		}
		if len(r.Violations) == 0 {
			return nil
		}
		for _, v := range r.Violations {
			e := v.Edge
			et, ok := e.To.Node().Behavior.(graph.ElemTyped)
			if !ok {
				return fmt.Errorf("transform: violation on %s without typed consumer", e)
			}
			to, ok := conversionTarget(et, e.To.Name, v.Have)
			if !ok {
				return fmt.Errorf("transform: %s.%s accepts no element kind for arriving %s",
					e.To.Node().Name(), e.To.Name, v.Have)
			}
			name := uniqueName(g, fmt.Sprintf("Convert(%s.%s:%s)",
				e.To.Node().Name(), e.To.Name, to))
			conv := kernel.Convert(name, to)
			g.Add(conv)
			from, fromPort := e.From.Node(), e.From.Name
			toNode, toPort := e.To.Node(), e.To.Name
			g.Disconnect(e)
			g.Connect(from, fromPort, conv, "in")
			g.Connect(conv, "out", toNode, toPort)
		}
	}
	// Each pass strictly reduces violations (every spliced edge now
	// carries an accepted kind), so reaching here is a bug in a
	// behavior's ElemTyped declaration.
	return fmt.Errorf("transform: element-kind conversions did not converge")
}

// conversionTarget picks the kind to convert an arriving stream to:
// the narrowest accepted kind reachable by exact widening, else the
// widest accepted kind.
func conversionTarget(et graph.ElemTyped, input string, have frame.Kind) (frame.Kind, bool) {
	kinds := []frame.Kind{frame.U8, frame.F32, frame.F64}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].Bytes() < kinds[j].Bytes() })
	for _, k := range kinds {
		if k != have && have.Widens(k) && et.ElemAccepts(input, k) {
			return k, true
		}
	}
	for i := len(kinds) - 1; i >= 0; i-- {
		if k := kinds[i]; k != have && et.ElemAccepts(input, k) {
			return k, true
		}
	}
	return frame.F64, false
}
