package mapping

import (
	"sort"

	"blockpar/internal/analysis"
	"blockpar/internal/graph"
	"blockpar/internal/machine"
)

// BinPack is the locality-blind alternative to Greedy: first-fit-
// decreasing bin packing of kernels onto PEs by utilization and memory,
// ignoring the graph's adjacency entirely. It typically provisions as
// few or fewer PEs than Greedy, but scatters communicating kernels
// across PEs — the ablation in DESIGN.md for the paper's choice to
// merge *neighboring* kernels (§V), which keeps streams on-processor
// and placement-friendly.
func BinPack(g *graph.Graph, r *analysis.Result, m machine.Machine) (*Assignment, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	type bin struct {
		util float64
		mem  int64
	}
	a := &Assignment{PEOf: make(map[*graph.Node]int)}
	var bins []bin

	var nodes []*graph.Node
	for _, n := range g.Nodes() {
		if mappable(n) {
			nodes = append(nodes, n)
		}
	}
	sort.SliceStable(nodes, func(i, j int) bool {
		ui := r.LoadOf(nodes[i], m).Utilization
		uj := r.LoadOf(nodes[j], m).Utilization
		if ui != uj {
			return ui > uj
		}
		return nodes[i].Name() < nodes[j].Name()
	})

	for _, n := range nodes {
		l := r.LoadOf(n, m)
		if n.NoMultiplex {
			a.PEOf[n] = len(bins)
			bins = append(bins, bin{util: 2, mem: m.PE.MemWords}) // never reused
			continue
		}
		placed := false
		for i := range bins {
			if bins[i].util+l.Utilization <= 1 && bins[i].mem+l.MemWords <= m.PE.MemWords {
				a.PEOf[n] = i
				bins[i].util += l.Utilization
				bins[i].mem += l.MemWords
				placed = true
				break
			}
		}
		if !placed {
			a.PEOf[n] = len(bins)
			bins = append(bins, bin{util: l.Utilization, mem: l.MemWords})
		}
	}
	a.NumPEs = len(bins)
	return a, nil
}

// CrossPEWords counts the channel words per frame that cross PE
// boundaries under an assignment, using the analysis' per-edge traffic.
// Greedy's adjacency-driven merging should keep this lower than
// BinPack's at comparable PE counts.
func CrossPEWords(g *graph.Graph, r *analysis.Result, a *Assignment) int64 {
	var total int64
	for _, e := range g.Edges() {
		fromPE, okF := a.PEOf[e.From.Node()]
		toPE, okT := a.PEOf[e.To.Node()]
		if okF && okT && fromPE == toPE {
			continue // on-processor stream
		}
		if info, ok := r.Out[e.From]; ok {
			total += info.WordsPerFrame()
		}
	}
	return total
}
