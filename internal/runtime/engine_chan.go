package runtime

import (
	"fmt"
	"sync"

	"blockpar/internal/graph"
)

// chanEngine is the default scheduling engine: one goroutine per node,
// buffered channels as the stream FIFOs. Channel capacity provides the
// pipeline's elasticity and backpressure; a node blocked on a full
// downstream inbox simply parks its goroutine.
type chanEngine struct {
	ex *executor

	inboxes map[*graph.Node]chan inMsg
	// producersLeft counts open producers per consumer node; the inbox
	// closes when it reaches zero.
	mu            sync.Mutex
	producersLeft map[*graph.Node]int
}

func newChanEngine(ex *executor) *chanEngine {
	eng := &chanEngine{
		ex:            ex,
		inboxes:       make(map[*graph.Node]chan inMsg),
		producersLeft: make(map[*graph.Node]int),
	}
	for _, n := range ex.g.Nodes() {
		if n.Kind == graph.KindInput {
			continue
		}
		eng.inboxes[n] = make(chan inMsg, ex.opts.ChannelCap)
		producers := make(map[*graph.Node]bool)
		for _, e := range ex.g.InEdges(n) {
			producers[e.From.Node()] = true
		}
		eng.producersLeft[n] = len(producers)
	}
	return eng
}

// start launches one goroutine per node and returns a channel closed
// when all of them have exited.
func (eng *chanEngine) start() chan struct{} {
	ex := eng.ex
	for _, n := range ex.g.Nodes() {
		n := n
		ex.wg.Add(1)
		go func() {
			defer func() {
				if ex.stream {
					if r := recover(); r != nil {
						ex.fail(fmt.Errorf("node %q panicked: %v", n.Name(), r))
					}
				}
				// This node will produce nothing more: release consumers.
				for _, consumer := range ex.downstreamConsumers(n) {
					eng.producerDone(consumer)
				}
				ex.wg.Done()
			}()
			if err := ex.runNode(n); err != nil && err != graph.ErrHalt {
				ex.fail(fmt.Errorf("node %q: %w", n.Name(), err))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		ex.wg.Wait()
		eng.sweep()
		close(done)
	}()
	return done
}

// sweep releases items abandoned in the inboxes. A completed stream
// leaves them empty; a truncated one (hard stop, or a partition whose
// peer died mid-frame) strands items no consumer will ever take, and
// their windows must go back to the arena. Runs after every node
// goroutine has exited, so nothing is delivering concurrently.
func (eng *chanEngine) sweep() {
	for _, inbox := range eng.inboxes {
	drain:
		for {
			select {
			case m, ok := <-inbox:
				if !ok {
					break drain
				}
				if !m.item.IsToken {
					m.item.Win.Release()
				}
			default:
				break drain
			}
		}
	}
}

// producerDone decrements the consumer's open-producer count, closing
// its inbox at zero. Each producer node calls it once per distinct
// consumer.
func (eng *chanEngine) producerDone(consumer *graph.Node) {
	eng.mu.Lock()
	defer eng.mu.Unlock()
	eng.producersLeft[consumer]--
	if eng.producersLeft[consumer] == 0 {
		close(eng.inboxes[consumer])
	}
}

func (eng *chanEngine) deliver(e *graph.Edge, it graph.Item) {
	inbox := eng.inboxes[e.To.Node()]
	select {
	case inbox <- inMsg{input: e.To.Name, item: it}:
	case <-eng.ex.stop:
		// The delivery is dropped; its window reference comes with it.
		if !it.IsToken {
			it.Win.Release()
		}
	}
}

func (eng *chanEngine) recv(n *graph.Node) (inMsg, bool) {
	select {
	case msg, ok := <-eng.inboxes[n]:
		return msg, ok
	case <-eng.ex.stop:
		// Drain without blocking so producers can finish.
		select {
		case msg, ok := <-eng.inboxes[n]:
			return msg, ok
		default:
			return inMsg{}, false
		}
	}
}

// stopNotify is a no-op: every chanEngine block point selects on the
// stop channel already.
func (eng *chanEngine) stopNotify() {}
