package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blockpar/internal/frame"
	"blockpar/internal/machine"
	"blockpar/internal/runtime"
)

// sheddingBackend refuses every placement with the typed capacity
// error, standing in for a cluster with no placeable worker.
type sheddingBackend struct {
	readiness Readiness
}

func (b *sheddingBackend) Open(p *Pipeline, opts OpenOptions) (SessionHandle, error) {
	return nil, fmt.Errorf("%w: no healthy cluster worker", ErrUnavailable)
}

func (b *sheddingBackend) Readiness() Readiness { return b.readiness }

// degradedBackend places sessions normally but reports reduced
// capacity, like a cluster with some workers down.
type degradedBackend struct {
	localBackend
}

func (b *degradedBackend) Readiness() Readiness {
	return Readiness{Status: "degraded", Detail: "1/2 cluster workers placeable"}
}

// TestServeRetryAfterOnShed covers the 503 shed path end to end: a
// backend without capacity turns session opens into 503 with a
// Retry-After header (the 429 twin lives in TestServeBackpressure429),
// the shed counter moves, and readiness reports unavailable.
func TestServeRetryAfterOnShed(t *testing.T) {
	reg := NewRegistry(machine.Embedded())
	if err := reg.AddSuite("5"); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, Options{
		Backend: &sheddingBackend{readiness: Readiness{Status: "unavailable", Detail: "0/2 cluster workers placeable"}},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, hdr, reply := doJSON(t, ts, "POST", "/sessions", map[string]any{"pipeline": "5"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("open with no capacity: got %d, want 503 (%s)", code, reply["error"])
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 shed reply is missing Retry-After")
	}

	code, _, m := doJSON(t, ts, "GET", "/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: got %d", code)
	}
	var shed int64
	if err := json.Unmarshal(m["shed_503"], &shed); err != nil {
		t.Fatal(err)
	}
	if shed < 1 {
		t.Errorf("metrics shed_503 = %d, want >= 1", shed)
	}

	code, _, rd := doJSON(t, ts, "GET", "/healthz/ready", nil)
	if code != http.StatusServiceUnavailable {
		t.Errorf("readiness with no capacity: got %d, want 503", code)
	}
	var status string
	if err := json.Unmarshal(rd["status"], &status); err != nil {
		t.Fatal(err)
	}
	if status != "unavailable" {
		t.Errorf("readiness status %q, want unavailable", status)
	}
}

// stuckBackend hands out sessions that accept frames but block their
// Close until released — a worker that will not finish draining.
type stuckBackend struct {
	release chan struct{}
}

func (b *stuckBackend) Open(p *Pipeline, opts OpenOptions) (SessionHandle, error) {
	return &stuckSession{release: b.release}, nil
}

type stuckSession struct {
	fed     int64
	release chan struct{}
}

func (s *stuckSession) TryFeed(map[string]frame.Window) (int64, error) {
	s.fed++
	return s.fed - 1, nil
}

func (s *stuckSession) Collect(timeout time.Duration) (*runtime.StreamResult, error) {
	return nil, fmt.Errorf("collect timed out after %v", timeout)
}

func (s *stuckSession) Fed() int64       { return s.fed }
func (s *stuckSession) Completed() int64 { return 0 }
func (s *stuckSession) InFlight() int64  { return s.fed }
func (s *stuckSession) Close() error     { <-s.release; return nil }

// TestServeDrainTimeoutAbandons pins the drain-timeout contract the
// -drain-timeout flag relies on: when sessions cannot finish inside
// the budget, Shutdown returns an error naming the abandoned work (so
// bpserve exits nonzero) instead of pretending the drain was clean.
func TestServeDrainTimeoutAbandons(t *testing.T) {
	reg := NewRegistry(machine.Embedded())
	if err := reg.AddSuite("5"); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	defer close(release)
	srv := NewServer(reg, Options{Backend: &stuckBackend{release: release}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id := openSession(t, ts, "5", 4)
	for i := 0; i < 2; i++ {
		if code, _, reply := doJSON(t, ts, "POST", "/sessions/"+id+"/frames", nil); code != http.StatusAccepted {
			t.Fatalf("feed %d: got %d (%s)", i, code, reply["error"])
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	err := srv.Shutdown(ctx)
	if err == nil {
		t.Fatal("drain past its budget reported a clean shutdown")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("drain-timeout error %v, want context.DeadlineExceeded in its chain", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "abandoned") || !strings.Contains(msg, "2 in-flight frames") {
		t.Errorf("drain-timeout error %q does not name the abandoned work", msg)
	}
}

// TestServeHealthzSplit pins the liveness/readiness contract: liveness
// stays 200 through degradation and draining (a draining server is
// alive), readiness answers 200 for ok and degraded but 503 once the
// server drains.
func TestServeHealthzSplit(t *testing.T) {
	reg := NewRegistry(machine.Embedded())
	if err := reg.AddSuite("5"); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, Options{Backend: &degradedBackend{}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _, _ := doJSON(t, ts, "GET", "/healthz/live", nil); code != http.StatusOK {
		t.Errorf("liveness: got %d, want 200", code)
	}
	code, _, rd := doJSON(t, ts, "GET", "/healthz/ready", nil)
	if code != http.StatusOK {
		t.Errorf("degraded readiness: got %d, want 200 (load balancers must keep routing)", code)
	}
	var status, detail string
	json.Unmarshal(rd["status"], &status)
	json.Unmarshal(rd["detail"], &detail)
	if status != "degraded" || detail == "" {
		t.Errorf("degraded readiness reported status=%q detail=%q", status, detail)
	}

	// Sessions still place while degraded.
	id := openSession(t, ts, "5", 2)
	if code, _, _ := doJSON(t, ts, "DELETE", "/sessions/"+id, nil); code != http.StatusOK {
		t.Errorf("close session: got %d, want 200", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code, _, _ := doJSON(t, ts, "GET", "/healthz/live", nil); code != http.StatusOK {
		t.Errorf("liveness while draining: got %d, want 200", code)
	}
	code, _, rd = doJSON(t, ts, "GET", "/healthz/ready", nil)
	if code != http.StatusServiceUnavailable {
		t.Errorf("readiness while draining: got %d, want 503", code)
	}
	json.Unmarshal(rd["status"], &status)
	if status != "draining" {
		t.Errorf("draining readiness status %q, want draining", status)
	}
}

// drainableBackend records DrainWorker calls, standing in for the
// cluster dispatcher behind the /drain-worker admin endpoint.
type drainableBackend struct {
	localBackend
	drained []string
}

func (b *drainableBackend) DrainWorker(name string) error {
	if strings.HasPrefix(name, "unknown") {
		return fmt.Errorf("cluster: unknown worker %q", name)
	}
	b.drained = append(b.drained, name)
	return nil
}

// TestServeDrainWorkerEndpoint covers the admin drain path: a
// drain-capable backend quiesces the named worker (200), unknown
// workers 404, a missing parameter 400s, and a backend without
// migration support answers 501.
func TestServeDrainWorkerEndpoint(t *testing.T) {
	reg := NewRegistry(machine.Embedded())
	if err := reg.AddSuite("5"); err != nil {
		t.Fatal(err)
	}
	b := &drainableBackend{}
	srv := NewServer(reg, Options{Backend: b})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _, reply := doJSON(t, ts, "POST", "/drain-worker?worker=10.0.0.7:9090", nil)
	if code != http.StatusOK {
		t.Fatalf("drain known worker: got %d (%s)", code, reply["error"])
	}
	var name string
	if err := json.Unmarshal(reply["draining"], &name); err != nil || name != "10.0.0.7:9090" {
		t.Fatalf("drain reply %v, want draining=10.0.0.7:9090", reply)
	}
	if len(b.drained) != 1 || b.drained[0] != "10.0.0.7:9090" {
		t.Fatalf("backend saw drains %v, want exactly the named worker", b.drained)
	}

	if code, _, _ := doJSON(t, ts, "POST", "/drain-worker?worker=unknown:1", nil); code != http.StatusNotFound {
		t.Errorf("drain unknown worker: got %d, want 404", code)
	}
	if code, _, _ := doJSON(t, ts, "POST", "/drain-worker", nil); code != http.StatusBadRequest {
		t.Errorf("drain without worker parameter: got %d, want 400", code)
	}

	local := NewServer(reg, Options{})
	lts := httptest.NewServer(local.Handler())
	defer lts.Close()
	if code, _, _ := doJSON(t, lts, "POST", "/drain-worker?worker=x", nil); code != http.StatusNotImplemented {
		t.Errorf("drain on a local backend: got %d, want 501", code)
	}
}
