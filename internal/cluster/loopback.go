package cluster

import (
	"context"
	"fmt"
	"net"
	"time"

	"blockpar/internal/registry"
)

// Loopback starts a worker on a loopback TCP listener and a
// single-worker dispatcher connected to it — the in-process harness the
// conformance driver, the cluster tests, and BenchmarkClusterLoopback
// use to exercise the full wire path without spawning processes. The
// returned stop function tears both down.
func Loopback(w *Worker, dopts DispatcherOptions) (*Dispatcher, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	go w.Serve(ln)
	d := NewDispatcher([]string{ln.Addr().String()}, dopts)
	if err := d.WaitReady(5 * time.Second); err != nil {
		d.Close()
		w.Close()
		return nil, nil, err
	}
	stop := func() {
		d.Close()
		w.Close()
	}
	return d, stop, nil
}

// LoopbackFleet starts n workers, each on its own loopback listener,
// and one dispatcher connected to all of them — the harness for
// partitioned-session tests and benchmarks. It blocks until every
// worker is placeable (a partitioned open needs the whole fleet), so
// callers can open sessions immediately. The returned workers allow
// targeted kills in chaos tests; the stop function tears everything
// down.
func LoopbackFleet(n int, dopts DispatcherOptions, mk func(i int) *Worker) (*Dispatcher, []*Worker, func(), error) {
	workers := make([]*Worker, n)
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	cleanup := func() {
		for _, ln := range lns {
			if ln != nil {
				ln.Close()
			}
		}
		for _, w := range workers {
			if w != nil {
				w.Close()
			}
		}
	}
	for i := 0; i < n; i++ {
		w := mk(i)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		workers[i], lns[i], addrs[i] = w, ln, ln.Addr().String()
		go w.Serve(ln)
	}
	d := NewDispatcher(addrs, dopts)
	deadline := time.Now().Add(5 * time.Second)
	for {
		up := 0
		for _, w := range d.snapshot() {
			if w.placeable() {
				up++
			}
		}
		if up == n {
			break
		}
		if time.Now().After(deadline) {
			d.Close()
			cleanup()
			return nil, nil, nil, fmt.Errorf("cluster: %d/%d workers reachable within 5s", up, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop := func() {
		d.Close()
		cleanup()
	}
	return d, workers, stop, nil
}

// RegisteredWorker bundles one self-registered worker: the execution
// Worker, its data-plane listener, and the Joiner maintaining its
// fleet registration. Chaos tests kill or drain it to exercise
// registration-flap campaigns.
type RegisteredWorker struct {
	Name   string
	Addr   string // data-plane address frontends dial back
	Worker *Worker
	Joiner *registry.Joiner

	ln net.Listener
}

// Kill simulates a crash: everything closes abruptly, no Deregister is
// sent, and frontends discover the death through the dead connection
// (sessions fail over) and lease expiry (membership drops).
func (rw *RegisteredWorker) Kill() {
	rw.Joiner.Close()
	rw.Worker.Close()
	rw.ln.Close()
}

// Drain leaves gracefully: Deregister first — frontends stop placing
// and cancel the reconnect loop — then the cooperative Shutdown that
// flushes every accepted frame.
func (rw *RegisteredWorker) Drain(ctx context.Context) error {
	rw.Joiner.Leave("draining")
	err := rw.Worker.Shutdown(ctx)
	rw.ln.Close()
	return err
}

// RegisteredClusterConfig parameterizes StartRegisteredCluster.
type RegisteredClusterConfig struct {
	// Lease is the fleet membership lease (default registry.DefaultLease;
	// chaos tests shrink it so eviction is fast).
	Lease time.Duration
	// Dispatcher tunes every frontend's dispatcher identically.
	Dispatcher DispatcherOptions
	// MakeWorker builds worker i's execution side. Each worker must
	// carry a unique name (WorkerOptions.Name).
	MakeWorker func(i int) *Worker
	// Capacity reports worker i's registered cycles/sec. Nil registers
	// effectively unlimited capacity so admission control never
	// interferes with correctness tests.
	Capacity func(i int) float64
	// Logf receives fleet diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// RegisteredCluster is the multi-frontend harness: every frontend runs
// its own Fleet (registration listener + registered dispatcher), and
// every worker joins all of them — exactly the bpserve -registry /
// bpworker -join topology, in-process over loopback TCP.
type RegisteredCluster struct {
	Fleets      []*registry.Fleet
	Dispatchers []*Dispatcher
	Workers     []*RegisteredWorker
	RegAddrs    []string // registration addresses workers join

	cfg RegisteredClusterConfig
}

// StartRegisteredCluster brings up `frontends` fleets and `workers`
// self-registered workers, and blocks until every dispatcher can place
// on every worker.
func StartRegisteredCluster(frontends, workers int, cfg RegisteredClusterConfig) (*RegisteredCluster, error) {
	if cfg.Lease <= 0 {
		cfg.Lease = registry.DefaultLease
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &RegisteredCluster{cfg: cfg}
	for i := 0; i < frontends; i++ {
		f := registry.NewFleet(registry.FleetOptions{
			Frontend: fmt.Sprintf("frontend-%d", i),
			Lease:    cfg.Lease,
			Logf:     cfg.Logf,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			c.Close()
			return nil, err
		}
		f.Serve(ln)
		c.Fleets = append(c.Fleets, f)
		c.RegAddrs = append(c.RegAddrs, ln.Addr().String())
		c.Dispatchers = append(c.Dispatchers, NewRegisteredDispatcher(f, cfg.Dispatcher))
	}
	for i := 0; i < workers; i++ {
		capacity := 1e18
		if cfg.Capacity != nil {
			capacity = cfg.Capacity(i)
		}
		if _, err := c.JoinWorker(cfg.MakeWorker(i), capacity); err != nil {
			c.Close()
			return nil, err
		}
	}
	if err := c.WaitPlaceable(workers, 10*time.Second); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// JoinWorker starts w's data-plane listener and registers it with
// every frontend — also how a flap campaign re-adds a worker
// mid-stream.
func (c *RegisteredCluster) JoinWorker(w *Worker, capacity float64) (*RegisteredWorker, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go w.Serve(ln)
	pipelines := func() []string {
		var ids []string
		for _, p := range w.Registry().List() {
			ids = append(ids, p.ID)
		}
		return ids
	}
	j, err := registry.Join(registry.JoinConfig{
		Frontends: c.RegAddrs,
		Self: registry.Member{
			Name:         w.Name(),
			Addr:         ln.Addr().String(),
			CyclesPerSec: capacity,
			Executor:     "workers",
		},
		Pipelines: pipelines,
		Load: func() (uint32, float64) {
			return uint32(w.OpenSessions()), 0
		},
		RetryMin: 10 * time.Millisecond,
		Logf:     c.cfg.Logf,
	})
	if err != nil {
		ln.Close()
		w.Close()
		return nil, err
	}
	rw := &RegisteredWorker{
		Name:   w.Name(),
		Addr:   ln.Addr().String(),
		Worker: w,
		Joiner: j,
		ln:     ln,
	}
	c.Workers = append(c.Workers, rw)
	return rw, nil
}

// WaitPlaceable blocks until every dispatcher can place on n workers.
func (c *RegisteredCluster) WaitPlaceable(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ready := true
		for _, d := range c.Dispatchers {
			if d.PlaceableWorkers() < n {
				ready = false
				break
			}
		}
		if ready {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: fleet not fully placeable within %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close tears everything down: joiners, workers, dispatchers, fleets.
func (c *RegisteredCluster) Close() {
	for _, rw := range c.Workers {
		rw.Joiner.Close()
		rw.Worker.Close()
		rw.ln.Close()
	}
	for _, d := range c.Dispatchers {
		d.Close()
	}
	for _, f := range c.Fleets {
		f.Close()
	}
}
