// Package frame provides the two-dimensional data carried on stream
// channels: windows (the unit item moved per kernel iteration), whole
// frames, deterministic synthetic frame generators, and golden
// sequential implementations of the paper's filters used to verify the
// transformed applications functionally.
package frame

import (
	"fmt"
	"math"
)

// Window is a dense, row-major 2-D block of samples. It is the value a
// channel carries per kernel iteration: a (1x1) window for pixel
// streams, a (5x5) window for a buffered convolution input, a (32x1)
// window for histogram bins, and so on.
type Window struct {
	W, H int
	Pix  []float64
}

// NewWindow allocates a zeroed w×h window.
func NewWindow(w, h int) Window {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("frame: invalid window size %dx%d", w, h))
	}
	return Window{W: w, H: h, Pix: make([]float64, w*h)}
}

// Scalar returns a 1x1 window holding v.
func Scalar(v float64) Window {
	return Window{W: 1, H: 1, Pix: []float64{v}}
}

// FromRows builds a window from row-major rows; all rows must have the
// same length.
func FromRows(rows [][]float64) Window {
	h := len(rows)
	if h == 0 {
		return Window{}
	}
	w := len(rows[0])
	win := NewWindow(w, h)
	for y, row := range rows {
		if len(row) != w {
			panic("frame: ragged rows")
		}
		copy(win.Pix[y*w:(y+1)*w], row)
	}
	return win
}

// At returns the sample at (x, y). It panics on out-of-range access.
func (w Window) At(x, y int) float64 {
	if x < 0 || x >= w.W || y < 0 || y >= w.H {
		panic(fmt.Sprintf("frame: At(%d,%d) outside %dx%d", x, y, w.W, w.H))
	}
	return w.Pix[y*w.W+x]
}

// Set stores v at (x, y). It panics on out-of-range access.
func (w Window) Set(x, y int, v float64) {
	if x < 0 || x >= w.W || y < 0 || y >= w.H {
		panic(fmt.Sprintf("frame: Set(%d,%d) outside %dx%d", x, y, w.W, w.H))
	}
	w.Pix[y*w.W+x] = v
}

// Value returns the single sample of a 1x1 window.
func (w Window) Value() float64 {
	if w.W != 1 || w.H != 1 {
		panic(fmt.Sprintf("frame: Value() on %dx%d window", w.W, w.H))
	}
	return w.Pix[0]
}

// Clone returns a deep copy of the window.
func (w Window) Clone() Window {
	out := Window{W: w.W, H: w.H, Pix: make([]float64, len(w.Pix))}
	copy(out.Pix, w.Pix)
	return out
}

// Sub returns a copy of the sub-window of size sw×sh anchored at (x, y).
func (w Window) Sub(x, y, sw, sh int) Window {
	out := NewWindow(sw, sh)
	for dy := 0; dy < sh; dy++ {
		srcOff := (y+dy)*w.W + x
		copy(out.Pix[dy*sw:(dy+1)*sw], w.Pix[srcOff:srcOff+sw])
	}
	return out
}

// Equal reports whether two windows have identical shape and samples.
func (w Window) Equal(o Window) bool {
	if w.W != o.W || w.H != o.H {
		return false
	}
	for i := range w.Pix {
		if w.Pix[i] != o.Pix[i] {
			return false
		}
	}
	return true
}

// AlmostEqual reports shape equality and element-wise |a-b| <= tol.
func (w Window) AlmostEqual(o Window, tol float64) bool {
	if w.W != o.W || w.H != o.H {
		return false
	}
	for i := range w.Pix {
		if math.Abs(w.Pix[i]-o.Pix[i]) > tol {
			return false
		}
	}
	return true
}

func (w Window) String() string {
	return fmt.Sprintf("Window(%dx%d)", w.W, w.H)
}

// Frame is a whole image: a Window with frame-level helpers. Frames are
// what generators produce and what golden reference filters consume.
type Frame = Window

// Windows enumerates, in scan-line order (left-to-right, top-to-bottom),
// every ww×wh window position of f advanced by (sx, sy), calling fn with
// the window's top-left coordinate. It is the canonical iteration-space
// walk shared by golden implementations and tests.
func Windows(f Frame, ww, wh, sx, sy int, fn func(x, y int)) {
	if ww > f.W || wh > f.H || ww < 1 || wh < 1 || sx < 1 || sy < 1 {
		return
	}
	for y := 0; y+wh <= f.H; y += sy {
		for x := 0; x+ww <= f.W; x += sx {
			fn(x, y)
		}
	}
}
