// Package report regenerates the paper's experimental figures as text
// tables: the Figure 11 parallelization matrix, the Figure 12 mapping
// comparison, and the Figure 13 per-benchmark utilization chart. Each
// experiment compiles a benchmark application, maps it 1:1 and greedily,
// simulates both, and reports per-PE utilization broken into run, read,
// and write time.
package report

import (
	"fmt"
	"strings"

	"blockpar/internal/apps"
	"blockpar/internal/core"
	"blockpar/internal/graph"
	"blockpar/internal/machine"
	"blockpar/internal/mapping"
	"blockpar/internal/sim"
)

// UtilBreakdown is mean PE utilization split as Figure 13 stacks it.
type UtilBreakdown struct {
	Run, Read, Write float64
}

// Total returns the overall mean utilization.
func (u UtilBreakdown) Total() float64 { return u.Run + u.Read + u.Write }

// MappingResult is one mapping's simulated outcome.
type MappingResult struct {
	PEs         int
	Util        UtilBreakdown
	RealTimeMet bool
	Throughput  float64
	// MaxLatency is the worst frame completion latency in seconds.
	MaxLatency float64
}

// Row is one benchmark's Figure 13 entry.
type Row struct {
	ID   string
	Name string
	// Conns lists the generalized-connection families the benchmark
	// uses (e.g. "broadcast,share" or "scatter-gather"), empty for the
	// point-to-point suite.
	Conns    string
	OneToOne MappingResult
	Greedy   MappingResult
}

// connFamilies summarizes which generalized-connection families a
// programmer-level graph uses, for the figure annotations.
func connFamilies(g *graph.Graph) string {
	var fams []string
	seen := make(map[string]bool)
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			fams = append(fams, s)
		}
	}
	for _, c := range g.Conns() {
		add(c.Family.String())
	}
	for _, n := range g.Nodes() {
		if c := n.Attrs["conn"]; c == "scatter" || c == "gather" {
			add("scatter-gather")
		}
	}
	return strings.Join(fams, ",")
}

// Improvement is the greedy-over-1:1 utilization factor.
func (r Row) Improvement() float64 {
	if r.OneToOne.Util.Total() == 0 {
		return 0
	}
	return r.Greedy.Util.Total() / r.OneToOne.Util.Total()
}

// RunBenchmark compiles, maps, and simulates one application under both
// mappings.
func RunBenchmark(app *apps.App, m machine.Machine, frames int) (Row, error) {
	row := Row{Name: app.Name, Conns: connFamilies(app.Graph)}
	c, err := core.Compile(app.Graph, core.Config{
		Machine: m, Parallelize: true, BufferStriping: true,
	})
	if err != nil {
		return row, fmt.Errorf("compile %s: %w", app.Name, err)
	}

	one := mapping.OneToOne(c.Graph)
	resOne, err := sim.Simulate(c.Graph, one, sim.Options{Machine: m, Frames: frames})
	if err != nil {
		return row, fmt.Errorf("simulate %s 1:1: %w", app.Name, err)
	}
	row.OneToOne = toMappingResult(one.NumPEs, resOne)

	gm, err := mapping.Greedy(c.Graph, c.Analysis, m)
	if err != nil {
		return row, fmt.Errorf("map %s greedy: %w", app.Name, err)
	}
	resGM, err := sim.Simulate(c.Graph, gm, sim.Options{Machine: m, Frames: frames})
	if err != nil {
		return row, fmt.Errorf("simulate %s greedy: %w", app.Name, err)
	}
	row.Greedy = toMappingResult(gm.NumPEs, resGM)
	return row, nil
}

func toMappingResult(pes int, res *sim.Result) MappingResult {
	run, read, write := res.Breakdown()
	return MappingResult{
		PEs:         pes,
		Util:        UtilBreakdown{Run: run, Read: read, Write: write},
		RealTimeMet: res.RealTimeMet(),
		Throughput:  res.Throughput,
		MaxLatency:  res.MaxLatency(),
	}
}

// Figure13 runs the full benchmark suite under both mappings.
func Figure13(m machine.Machine, frames int) ([]Row, error) {
	var rows []Row
	for _, b := range apps.Figure13Suite() {
		row, err := RunBenchmark(b.App, m, frames)
		if err != nil {
			return nil, err
		}
		row.ID = b.ID
		rows = append(rows, row)
	}
	return rows, nil
}

// AverageImprovement returns the mean greedy-over-1:1 factor (the
// paper reports 1.5x).
func AverageImprovement(rows []Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rows {
		sum += r.Improvement()
	}
	return sum / float64(len(rows))
}

// RenderFigure13 renders the rows as the paper's Figure 13: per
// benchmark, stacked run/read/write utilization for 1:1 and greedy
// mappings.
func RenderFigure13(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-16s | %4s %6s %6s %6s %6s %3s | %4s %6s %6s %6s %6s %3s | %5s\n",
		"id", "benchmark",
		"PEs", "run", "read", "write", "total", "rt",
		"PEs", "run", "read", "write", "total", "rt",
		"gain")
	b.WriteString(strings.Repeat("-", 132) + "\n")
	for _, r := range rows {
		tag := ""
		if r.Conns != "" {
			tag = "  [" + r.Conns + "]"
		}
		fmt.Fprintf(&b, "%-4s %-16s | %s | %s | %4.2fx%s\n",
			r.ID, r.Name, fmtMapping(r.OneToOne), fmtMapping(r.Greedy), r.Improvement(), tag)
	}
	fmt.Fprintf(&b, "\naverage utilization improvement (greedy over 1:1): %.2fx (paper: 1.5x)\n",
		AverageImprovement(rows))
	return b.String()
}

func fmtMapping(m MappingResult) string {
	rt := "ok"
	if !m.RealTimeMet {
		rt = "NO"
	}
	return fmt.Sprintf("%4d %5.1f%% %5.1f%% %5.1f%% %5.1f%% %3s",
		m.PEs, 100*m.Util.Run, 100*m.Util.Read, 100*m.Util.Write, 100*m.Util.Total(), rt)
}

// Figure12Result compares the two mappings on the running example.
type Figure12Result struct {
	Row Row
	// Groups lists, for the greedy mapping, the kernels sharing each PE.
	Groups [][]string
}

// Figure12 reproduces the mapping comparison of Figure 12 on the
// fast/small image pipeline (the Figure 4 application).
func Figure12(m machine.Machine, frames int) (*Figure12Result, error) {
	p := apps.Preset{ID: "SF", W: apps.SmallW, H: apps.SmallH, Samples: apps.FastRate}
	app := apps.ImagePreset(p)
	c, err := core.Compile(app.Graph, core.Config{Machine: m, Parallelize: true, BufferStriping: true})
	if err != nil {
		return nil, err
	}
	one := mapping.OneToOne(c.Graph)
	resOne, err := sim.Simulate(c.Graph, one, sim.Options{Machine: m, Frames: frames})
	if err != nil {
		return nil, err
	}
	gm, err := mapping.Greedy(c.Graph, c.Analysis, m)
	if err != nil {
		return nil, err
	}
	resGM, err := sim.Simulate(c.Graph, gm, sim.Options{Machine: m, Frames: frames})
	if err != nil {
		return nil, err
	}
	out := &Figure12Result{
		Row: Row{
			ID:       "fig12",
			Name:     app.Name,
			OneToOne: toMappingResult(one.NumPEs, resOne),
			Greedy:   toMappingResult(gm.NumPEs, resGM),
		},
	}
	for pe := 0; pe < gm.NumPEs; pe++ {
		var names []string
		for _, n := range gm.NodesOn(c.Graph, pe) {
			names = append(names, n.Name())
		}
		out.Groups = append(out.Groups, names)
	}
	return out, nil
}

// RenderFigure12 renders the comparison plus the greedy PE groups.
func RenderFigure12(r *Figure12Result) string {
	var b strings.Builder
	b.WriteString("Figure 12: kernel-to-processor mappings of the parallelized image pipeline\n\n")
	fmt.Fprintf(&b, "1:1 mapping:    %s\n", fmtMapping(r.Row.OneToOne))
	fmt.Fprintf(&b, "greedy mapping: %s\n", fmtMapping(r.Row.Greedy))
	fmt.Fprintf(&b, "utilization improvement: %.2fx (paper: 20%% -> 37%%, 1.85x on this app)\n\n", r.Row.Improvement())
	b.WriteString("greedy PE groups (multiplexed kernels share a line):\n")
	for pe, names := range r.Groups {
		fmt.Fprintf(&b, "  PE%-3d %s\n", pe, strings.Join(names, " + "))
	}
	return b.String()
}

// Figure11Row summarizes one preset's automatic parallelization.
type Figure11Row struct {
	Preset  apps.Preset
	Degrees map[string]int
	Counts  map[graph.NodeKind]int
	PEs     int
}

// Figure11 compiles the running example at the four size/rate corners.
func Figure11(m machine.Machine) ([]Figure11Row, error) {
	var rows []Figure11Row
	for _, p := range apps.Figure11Presets() {
		app := apps.ImagePreset(p)
		c, err := core.Compile(app.Graph, core.Config{Machine: m, Parallelize: true, BufferStriping: true})
		if err != nil {
			return nil, fmt.Errorf("preset %s: %w", p.ID, err)
		}
		rows = append(rows, Figure11Row{
			Preset:  p,
			Degrees: c.Report.Degrees,
			Counts:  c.Graph.CountByKind(),
			PEs:     mapping.OneToOne(c.Graph).NumPEs,
		})
	}
	return rows, nil
}

// RenderFigure11 renders the parallelization matrix.
func RenderFigure11(rows []Figure11Row) string {
	var b strings.Builder
	b.WriteString("Figure 11: automatic parallelization and buffering across input sizes and rates\n\n")
	fmt.Fprintf(&b, "%-4s %9s %12s | %4s %6s %4s %5s | %7s %7s %6s %5s\n",
		"id", "frame", "samples/s", "conv", "median", "hist", "merge", "buffers", "split/j", "repl", "PEs")
	b.WriteString(strings.Repeat("-", 96) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s %4dx%-4d %12d | %4d %6d %4d %5d | %7d %3d/%-3d %6d %5d\n",
			r.Preset.ID, r.Preset.W, r.Preset.H, r.Preset.Samples,
			r.Degrees["5x5 Conv"], r.Degrees["3x3 Median"],
			r.Degrees["Histogram"], r.Degrees["Merge"],
			r.Counts[graph.KindBuffer], r.Counts[graph.KindSplit], r.Counts[graph.KindJoin],
			r.Counts[graph.KindReplicate], r.PEs)
	}
	b.WriteString("\nshape checks: buffers grow small->big (size axis); compute degrees grow slow->fast (rate axis);\n")
	b.WriteString("merge stays serial via its data-dependency edge.\n")
	return b.String()
}
