package conformance

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blockpar/internal/apps"
	"blockpar/internal/core"
	"blockpar/internal/desc"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/machine"
	"blockpar/internal/runtime"
	"blockpar/internal/serve"
)

var (
	nFlag        = flag.Int("conformance.n", 200, "random graphs checked by TestDiffRandomGraphs")
	seedFlag     = flag.Uint64("conformance.seed", 1, "first generator seed (replay a failure with -conformance.seed=N -conformance.n=1)")
	backendsFlag = flag.String("conformance.backends", strings.Join(DefaultBackends(), ","),
		"comma-separated execution backends to diff ("+strings.Join(Backends(), ", ")+"); the nightly sweep adds cluster")
	chaosFlag = flag.Bool("conformance.chaos", false,
		"run the full chaos matrix in TestChaosConformance (-conformance.n seeds x "+
			strings.Join(ChaosModes(), ",")+"); without it a 2-seed smoke runs")
)

func flagBackends(t *testing.T) []string {
	t.Helper()
	bs := strings.Split(*backendsFlag, ",")
	if _, err := backendSet(bs); err != nil {
		t.Fatal(err)
	}
	return bs
}

// TestDiffRandomGraphs is the differential harness entry point: every
// seeded random graph runs through the selected backends — by default
// the sequential oracle vs the batch goroutine runtime, the worker-pool
// executor, a streaming session, and the simulator — at every PE budget
// in Variants(), and all outputs must be byte-identical. The nightly
// sweep passes -conformance.backends=batch,workers,session,sim,cluster
// to add the TCP-loopback cluster path.
func TestDiffRandomGraphs(t *testing.T) {
	n := *nFlag
	if testing.Short() && n > 25 {
		n = 25
	}
	backends := flagBackends(t)
	for i := 0; i < n; i++ {
		seed := *seedFlag + uint64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			c := Generate(seed)
			if err := Check(c, CheckOptions{Backends: backends}); err != nil {
				t.Fatalf("case %s [seed=%d]: %v\nreplay: go test ./internal/conformance -conformance.seed=%d -conformance.n=1", c.Name, seed, err, seed)
			}
		})
	}
}

// TestDiffClusterSmoke keeps the cluster backend honest between
// nightly sweeps: a few seeds through the full distributed path on
// every PR, whatever -conformance.backends says.
func TestDiffClusterSmoke(t *testing.T) {
	const seeds = 3
	for i := 0; i < seeds; i++ {
		seed := *seedFlag + uint64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			c := Generate(seed)
			if err := Check(c, CheckOptions{Backends: []string{"cluster"}}); err != nil {
				t.Fatalf("case %s [seed=%d backend=cluster]: %v", c.Name, seed, err)
			}
		})
	}
}

// TestDiffPartitionedSmoke does the same for partitioned sessions: a
// few seeds split by the placement layer across 2- and 3-worker
// loopback fleets on every PR, so cut-edge streaming stays honest
// between nightly sweeps. Cases whose placement collapses run whole —
// exercising that fallback is part of the point.
func TestDiffPartitionedSmoke(t *testing.T) {
	const seeds = 3
	for i := 0; i < seeds; i++ {
		seed := *seedFlag + uint64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			c := Generate(seed)
			if err := Check(c, CheckOptions{Backends: []string{"partitioned"}}); err != nil {
				t.Fatalf("case %s [seed=%d backend=partitioned]: %v", c.Name, seed, err)
			}
		})
	}
}

// TestDiffRegisteredSmoke does the same for the self-registered fleet:
// a few seeds through two frontends sharing three self-registered
// workers on every PR, so ring placement agreement and the
// registration plane stay honest between nightly sweeps.
func TestDiffRegisteredSmoke(t *testing.T) {
	const seeds = 3
	for i := 0; i < seeds; i++ {
		seed := *seedFlag + uint64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			c := Generate(seed)
			if err := Check(c, CheckOptions{Backends: []string{"registered"}}); err != nil {
				t.Fatalf("case %s [seed=%d backend=registered]: %v", c.Name, seed, err)
			}
		})
	}
}

// TestChaosConformance is the robustness sweep: seeded random graphs
// streamed through a two-worker cluster under seeded fault injection
// (and mid-stream worker kills), asserting CheckChaos's contract —
// byte-identical completion or a typed error, never a hang, never an
// arena leak. Default is a 2-seed smoke over kill+corrupt; the CI
// chaos-smoke job passes -conformance.chaos -conformance.n=25 and the
// nightly sweep runs the full matrix at -conformance.n=100.
//
// Chaos cases never run in parallel: the arena-leak check compares the
// global frame.Stats().Live gauge against a per-case baseline, which
// a concurrent stream would wobble.
func TestChaosConformance(t *testing.T) {
	seeds, modes := 2, []string{"kill", "corrupt"}
	if *chaosFlag {
		seeds, modes = *nFlag, ChaosModes()
	}
	if testing.Short() && seeds > 5 {
		seeds = 5
	}
	for i := 0; i < seeds; i++ {
		seed := *seedFlag + uint64(i)
		c := Generate(seed)
		for _, mode := range modes {
			t.Run(fmt.Sprintf("seed=%d/%s", seed, mode), func(t *testing.T) {
				if err := CheckChaos(c, seed, mode); err != nil {
					t.Fatalf("case %s [seed=%d mode=%s backend=embedded]: %v\nreplay: go test ./internal/conformance -run TestChaosConformance -conformance.chaos -conformance.seed=%d -conformance.n=1",
						c.Name, seed, mode, err, seed)
				}
			})
		}
	}
}

// TestChaosSuiteApps holds the Figure 13 suite apps to the same bar:
// a mid-stream worker kill on every paper benchmark must be invisible
// — failover replays the session and every frame stays byte-identical
// to the oracle — and likewise a kill of one partition of the session
// split across a 3-worker fleet, and a registration flap on a
// self-registered fleet (the worker crashes without deregistering and
// a replacement rejoins under its name mid-stream).
func TestChaosSuiteApps(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite apps skipped in -short")
	}
	for _, id := range apps.IDs() {
		for _, mode := range []string{"kill", "partition-kill", "flap"} {
			t.Run("app-"+id+"/"+mode, func(t *testing.T) {
				app, err := apps.ByID(id)
				if err != nil {
					t.Fatal(err)
				}
				c := &Case{Name: app.Name, Graph: app.Graph, Sources: app.Sources}
				seed := 1000 + uint64(len(id))
				if err := CheckChaos(c, seed, mode); err != nil {
					t.Fatalf("app %s [seed=%d mode=%s backend=embedded]: %v", id, seed, mode, err)
				}
			})
		}
	}
}

// TestOracleMatchesAppGoldens anchors the oracle itself: on the suite
// apps with hand-computed goldens, the reference interpreter must
// reproduce the golden outputs exactly. A generator bug and a matching
// oracle bug could hide each other; this cross-check cannot.
func TestOracleMatchesAppGoldens(t *testing.T) {
	cases := []*apps.App{
		apps.ImagePipeline("image", apps.ImageCfg{W: 16, H: 12, Rate: geom.FInt(10), Bins: 8}),
		apps.Bayer("bayer", apps.BayerCfg{W: 12, H: 8, Rate: geom.FInt(10)}),
		apps.HistogramApp("hist", apps.HistCfg{W: 12, H: 10, Rate: geom.FInt(10), Bins: 16}),
		apps.ParallelBufferTest("buffer", apps.BufferCfg{W: 24, H: 8, Rate: geom.FInt(10)}),
		apps.MultiConv("multiconv", apps.MultiConvCfg{W: 20, H: 16, Rate: geom.FInt(10)}),
	}
	const frames = 2
	for _, app := range cases {
		t.Run(app.Name, func(t *testing.T) {
			c := &Case{Name: app.Name, Graph: app.Graph, Sources: app.Sources}
			got, err := OracleFrames(c, frames)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			for f := 0; f < frames; f++ {
				want := app.Golden(int64(f))
				for name, ws := range want {
					if err := compareWindows(got[f][name], ws); err != nil {
						t.Errorf("output %q frame %d: %v", name, f, err)
					}
				}
			}
		})
	}
}

// TestMutationJoinSwapCaught is the harness' own smoke check: a
// deliberately broken transform must be detected. Crossing the two
// collection edges of a join both violates the §IV ordering invariant
// and scrambles the output stream, so the invariant checker and the
// byte-level comparison must each catch it.
func TestMutationJoinSwapCaught(t *testing.T) {
	v := Variant{Name: "small-rr", Machine: machine.Small(), Striping: false}
	var (
		c        *Case
		want     []map[string][]frame.Window
		compiled *core.Compiled
		join     *graph.Node
	)
	// Raise the input rate until the starved machine is forced to
	// parallelize the convolution (inserting a round-robin join).
	for _, rate := range []int64{30, 120, 480, 1920} {
		app := apps.ParallelBufferTest("mutant", apps.BufferCfg{W: 24, H: 8, Rate: geom.FInt(rate)})
		c = &Case{Name: app.Name, Graph: app.Graph, Sources: app.Sources}
		var err error
		if want, err = OracleFrames(c, 2); err != nil {
			t.Fatalf("oracle: %v", err)
		}
		if compiled, err = compileVariant(c, v); err != nil {
			t.Fatalf("compile at rate %d: %v", rate, err)
		}
		for _, n := range compiled.Graph.Nodes() {
			if n.Kind == graph.KindJoin && len(n.Inputs()) >= 2 {
				join = n
				break
			}
		}
		if join != nil {
			break
		}
	}
	if join == nil {
		t.Fatal("pipeline did not parallelize: no join kernel to mutate")
	}
	g := compiled.Graph
	e0, e1 := g.EdgeTo(join.Input("in0")), g.EdgeTo(join.Input("in1"))
	n0, p0 := e0.From.Node(), e0.From.Name
	n1, p1 := e1.From.Node(), e1.From.Name
	g.Disconnect(e0)
	g.Disconnect(e1)
	g.Connect(n0, p0, join, "in1")
	g.Connect(n1, p1, join, "in0")

	if err := CheckInvariants(compiled); err == nil {
		t.Error("CheckInvariants accepted a join with crossed collection edges")
	} else {
		t.Logf("invariant checker caught: %v", err)
	}
	if _, err := checkBatch(g, c.Sources, want, runtime.ExecGoroutines); err == nil {
		t.Error("differential run accepted a join with crossed collection edges")
	} else {
		t.Logf("differential comparison caught: %v", err)
	}
}

// TestMutationBufferPlanCaught checks the §III-B invariant detects a
// buffer that no longer double-buffers: halving its declared memory is
// exactly the single-buffered allocation the paper rules out.
func TestMutationBufferPlanCaught(t *testing.T) {
	app := apps.MultiConv("mutant-buf", apps.MultiConvCfg{W: 20, H: 16, Rate: geom.FInt(10)})
	c := &Case{Name: app.Name, Graph: app.Graph, Sources: app.Sources}
	compiled, err := compileVariant(c, Variant{Name: "embedded", Machine: machine.Embedded(), Striping: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var buf *graph.Node
	for _, n := range compiled.Graph.Nodes() {
		if n.Kind == graph.KindBuffer {
			buf = n
			break
		}
	}
	if buf == nil {
		t.Fatal("compiled pipeline has no buffer to mutate")
	}
	if _, ok := kernel.BufferPlanOf(buf); !ok {
		t.Fatal("buffer carries no plan")
	}
	buf.Method("buffer").Memory /= 2
	if err := CheckInvariants(compiled); err == nil {
		t.Error("CheckInvariants accepted a buffer whose plan disagrees with its declared storage")
	} else {
		t.Logf("invariant checker caught: %v", err)
	}
}

// TestDiffHTTPServe extends the differential matrix across the HTTP
// boundary: generated pipelines are registered with a serve registry
// and streamed frame by frame over httptest, and the wire outputs must
// still match the oracle exactly (float64 JSON round-trips losslessly).
func TestDiffHTTPServe(t *testing.T) {
	const seeds, frames = 5, 2
	reg := serve.NewRegistry(machine.Embedded())
	srv := serve.NewServer(reg, serve.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < seeds; i++ {
		seed := *seedFlag + uint64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := Generate(seed)
			want, err := OracleFrames(c, frames)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			id := fmt.Sprintf("conf-%d", seed)
			app := &apps.App{Name: c.Name, Graph: c.Graph.Clone(), Sources: c.Sources}
			if _, err := reg.AddApp(id, "conformance", app); err != nil {
				t.Fatalf("register: %v", err)
			}
			var open struct {
				Session string `json:"session"`
			}
			postJSON(t, ts, "/sessions", map[string]any{"pipeline": id}, http.StatusCreated, &open)
			for f := 0; f < frames; f++ {
				var rep struct {
					Frame   int64                         `json:"frame"`
					Outputs map[string][]serve.WindowJSON `json:"outputs"`
				}
				postJSON(t, ts, "/sessions/"+open.Session+"/process", nil, http.StatusOK, &rep)
				if rep.Frame != int64(f) {
					t.Fatalf("processed frame %d, want %d", rep.Frame, f)
				}
				for name, ws := range want[f] {
					got := make([]frame.Window, len(rep.Outputs[name]))
					for i, jw := range rep.Outputs[name] {
						w, err := jw.ToWindow()
						if err != nil {
							t.Fatalf("output %q window %d: %v", name, i, err)
						}
						got[i] = w
					}
					if err := compareWindows(got, ws); err != nil {
						t.Fatalf("output %q frame %d: %v", name, f, err)
					}
				}
			}
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+open.Session, nil)
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		})
	}
}

// TestCorpusDescriptors replays the checked-in corpus without -fuzz:
// bad-*.json must parse to an error (never a panic) and be rejected by
// the registry endpoint with HTTP 400; ok-*.json must parse, register,
// and compile.
func TestCorpusDescriptors(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus descriptors in testdata/: %v", err)
	}
	reg := serve.NewRegistry(machine.Embedded())
	srv := serve.NewServer(reg, serve.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, f := range files {
		name := filepath.Base(f)
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			_, parseErr := desc.Parse(data)
			resp, err := http.Post(ts.URL+"/pipelines", "application/json", bytes.NewReader(data))
			if err != nil {
				t.Fatalf("POST /pipelines: %v", err)
			}
			defer resp.Body.Close()
			switch {
			case strings.HasPrefix(name, "bad-"):
				if parseErr == nil {
					t.Error("Parse accepted a corpus descriptor marked bad")
				}
				if resp.StatusCode != http.StatusBadRequest {
					t.Errorf("registry answered %d for a bad descriptor, want 400", resp.StatusCode)
				}
			case strings.HasPrefix(name, "ok-"):
				if parseErr != nil {
					t.Errorf("Parse rejected a corpus descriptor marked ok: %v", parseErr)
				}
				if resp.StatusCode != http.StatusCreated {
					t.Errorf("registry answered %d for an ok descriptor, want 201", resp.StatusCode)
				}
			default:
				t.Fatalf("corpus file %q must be named ok-*.json or bad-*.json", name)
			}
		})
	}
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any, wantCode int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		t.Fatalf("POST %s: status %d, want %d: %s", path, resp.StatusCode, wantCode, msg.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode reply: %v", path, err)
		}
	}
}
