package serve

import (
	"errors"
	"time"

	"blockpar/internal/frame"
	"blockpar/internal/runtime"
)

// ErrUnavailable tags backend placement failures that are capacity
// problems, not bugs — the HTTP layer maps them to 503 so clients
// retry elsewhere instead of treating them as server errors.
var ErrUnavailable = errors.New("serve: no execution capacity available")

// ErrOverloaded tags admission-control rejections: the projected
// cycles/sec demand of open sessions plus the new one exceeds the
// fleet's analysis-derived capacity. Unlike ErrUnavailable (nothing to
// place on), the fleet is healthy but full — the HTTP layer maps it to
// 429 + Retry-After, the same contract as a full frame queue.
var ErrOverloaded = errors.New("serve: fleet capacity exhausted")

// ErrSessionLost tags sessions whose execution was lost mid-stream and
// could not be recovered by failover (worker death with no surviving
// capacity, or a session past its replay budget). It is a transient
// infrastructure fault, not a caller mistake: the HTTP layer maps it
// to 503 + Retry-After so clients reopen the session.
var ErrSessionLost = errors.New("serve: session execution lost")

// SessionHandle is the server's view of one streaming execution
// instance, wherever it runs. *runtime.Session satisfies it directly
// (in-process execution); the cluster dispatcher returns handles that
// proxy the same operations to a remote worker over the wire protocol.
//
// Windows returned by Collect follow the frame ownership protocol: the
// caller owns one reference per window and must Release each (a no-op
// for unpooled storage, which is what in-process sessions return).
type SessionHandle interface {
	// TryFeed enqueues one frame without blocking; runtime.ErrQueueFull
	// signals backpressure and runtime.ErrBadFrame caller mistakes.
	TryFeed(inputs map[string]frame.Window) (int64, error)
	// Collect blocks for the next completed frame, bounded by timeout.
	Collect(timeout time.Duration) (*runtime.StreamResult, error)
	// Fed, Completed, and InFlight report the session's frame counters.
	Fed() int64
	Completed() int64
	InFlight() int64
	// Close drains in-flight frames and tears the session down.
	Close() error
}

// OpenOptions parameterize one session placement.
type OpenOptions struct {
	// MaxInFlight bounds the session's frame queue.
	MaxInFlight int
	// Deadline, when positive, is a wall-clock budget for the whole
	// session. Backends propagate it to wherever execution lands (the
	// cluster dispatcher bounds failover with it and ships it to the
	// worker), so a stuck session cancels cleanly instead of pinning
	// resources forever. Zero means no deadline.
	Deadline time.Duration
	// Key, when non-empty, pins placement: backends with a consistent-
	// hash ring route equal keys to the same worker, so any frontend
	// sharing the fleet places (or resumes) the session identically.
	// Empty keys fall back to load-based placement.
	Key string
}

// Backend decides where sessions execute. The default runs them
// in-process; the cluster dispatcher places them on remote workers.
type Backend interface {
	// Open starts a session for the pipeline. Capacity failures are
	// tagged ErrUnavailable.
	Open(p *Pipeline, opts OpenOptions) (SessionHandle, error)
}

// StatsReporter is implemented by backends with their own gauges (the
// cluster dispatcher); /metrics inlines the report when present.
type StatsReporter interface {
	BackendStats() any
}

// Readiness summarizes whether a backend can currently place sessions.
type Readiness struct {
	// Status is "ok", "degraded" (capacity reduced but sessions still
	// place, e.g. some cluster workers down or breaker-open), or
	// "unavailable" (no placement possible).
	Status string `json:"status"`
	// Detail explains a non-ok status for humans.
	Detail string `json:"detail,omitempty"`
}

// ReadinessReporter is implemented by backends that can distinguish
// degraded from healthy capacity; /healthz/ready inlines the report.
type ReadinessReporter interface {
	Readiness() Readiness
}

// localBackend executes sessions in-process, preserving the original
// single-binary behavior.
type localBackend struct {
	executor runtime.ExecutorKind
	workers  int
}

func (b localBackend) Open(p *Pipeline, opts OpenOptions) (SessionHandle, error) {
	return p.NewSession(runtime.SessionOptions{
		MaxInFlight: opts.MaxInFlight,
		Executor:    b.executor,
		Workers:     b.workers,
	})
}

// releaseOutputs ends the caller's reference on every collected window
// once it has been encoded onto the response. In-process results are
// unpooled slab copies (no-op); cluster results are arena windows that
// return to the pool here.
func releaseOutputs(outs map[string][]frame.Window) {
	for _, ws := range outs {
		for _, w := range ws {
			w.Release()
		}
	}
}

var _ SessionHandle = (*runtime.Session)(nil)
