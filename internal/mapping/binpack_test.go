package mapping

import (
	"testing"

	"blockpar/internal/machine"
)

func TestBinPackRespectsCapacity(t *testing.T) {
	g, r := compiledImageApp(t)
	m := machine.Embedded()
	bp, err := BinPack(g, r, m)
	if err != nil {
		t.Fatal(err)
	}
	for pe := 0; pe < bp.NumPEs; pe++ {
		var util float64
		var mem int64
		nodes := bp.NodesOn(g, pe)
		for _, n := range nodes {
			l := r.LoadOf(n, m)
			util += l.Utilization
			mem += l.MemWords
		}
		if len(nodes) > 1 && (util > 1 || mem > m.PE.MemWords) {
			t.Errorf("PE %d over capacity: util %.2f mem %d", pe, util, mem)
		}
	}
	// NoMultiplex kernels stay alone.
	for _, n := range g.Nodes() {
		if n.NoMultiplex {
			if got := len(bp.NodesOn(g, bp.PEOf[n])); got != 1 {
				t.Errorf("NoMultiplex %q shares a PE", n.Name())
			}
		}
	}
}

// TestGreedyKeepsStreamsLocal is the mapping ablation: locality-blind
// bin packing may use as few PEs, but the paper's neighbor-merging
// greedy keeps far more stream traffic on-processor.
func TestGreedyKeepsStreamsLocal(t *testing.T) {
	g, r := compiledImageApp(t)
	m := machine.Embedded()
	gm, err := Greedy(g, r, m)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := BinPack(g, r, m)
	if err != nil {
		t.Fatal(err)
	}
	one := OneToOne(g)

	crossGM := CrossPEWords(g, r, gm)
	crossBP := CrossPEWords(g, r, bp)
	crossOne := CrossPEWords(g, r, one)

	// 1:1 is the worst case: everything crosses.
	if crossGM >= crossOne {
		t.Errorf("greedy cross-PE words %d not below 1:1's %d", crossGM, crossOne)
	}
	// Greedy must beat locality-blind packing on locality.
	if crossGM >= crossBP {
		t.Errorf("greedy cross-PE words %d not below bin packing's %d", crossGM, crossBP)
	}
	t.Logf("cross-PE words/frame: 1:1 %d, binpack %d (PEs %d), greedy %d (PEs %d)",
		crossOne, crossBP, bp.NumPEs, crossGM, gm.NumPEs)
}
