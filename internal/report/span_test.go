package report

import (
	"strings"
	"testing"

	"blockpar/internal/apps"
	"blockpar/internal/core"
	"blockpar/internal/machine"
	"blockpar/internal/mapping"
)

// TestSuiteSpansPaperSizeRange checks the §V sentence: the greedy
// algorithm was evaluated "across a variety of test programs ranging in
// size from fewer than 10 kernels to more than 50" — our compiled suite
// must span that range too.
func TestSuiteSpansPaperSizeRange(t *testing.T) {
	minKernels, maxKernels := 1<<30, 0
	for _, b := range apps.Figure13Suite() {
		c, err := core.Compile(b.App.Graph, core.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", b.ID, err)
		}
		n := mapping.OneToOne(c.Graph).NumPEs
		if n < minKernels {
			minKernels = n
		}
		if n > maxKernels {
			maxKernels = n
		}
	}
	if minKernels >= 10 {
		t.Errorf("smallest program has %d kernels, want < 10", minKernels)
	}
	if maxKernels <= 40 {
		t.Errorf("largest program has %d kernels, want > 40", maxKernels)
	}
	t.Logf("suite spans %d..%d kernels (paper: <10 to >50)", minKernels, maxKernels)
}

func TestMappingDotClusters(t *testing.T) {
	app := apps.ImagePreset(apps.Preset{ID: "SS", W: apps.SmallW, H: apps.SmallH, Samples: apps.SlowRate})
	c, err := core.Compile(app.Graph, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gm, err := mapping.Greedy(c.Graph, c.Analysis, machine.Embedded())
	if err != nil {
		t.Fatal(err)
	}
	dot := mapping.Dot(c.Graph, gm)
	for _, want := range []string{"digraph", "cluster_pe0", "label=\"PE0\"", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("clustered dot missing %q", want)
		}
	}
	// Every PE with kernels appears as a cluster.
	if got := strings.Count(dot, "subgraph cluster_pe"); got != gm.NumPEs {
		t.Errorf("clusters = %d, want %d", got, gm.NumPEs)
	}
}
