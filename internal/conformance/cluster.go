package conformance

import (
	"fmt"

	"blockpar/internal/cluster"
	"blockpar/internal/core"
	"blockpar/internal/frame"
	"blockpar/internal/machine"
	"blockpar/internal/serve"
)

// checkCluster streams the case through the full distributed path — a
// dispatcher, the TCP wire codec, and a loopback worker session — and
// compares every frame with the oracle. The exact compiled variant
// under test is registered directly (AddCompiled), so the worker
// executes the same transformed graph the other backends diffed; the
// wire round trip must not perturb a single bit.
func checkCluster(compiled *core.Compiled, sources map[string]frame.Generator,
	want []map[string][]frame.Window) error {

	reg := serve.NewRegistry(machine.Embedded())
	p, err := reg.AddCompiled("case", "case", compiled, sources)
	if err != nil {
		return err
	}
	w := cluster.NewWorker(reg, cluster.WorkerOptions{Name: "conformance"})
	d, stop, err := cluster.Loopback(w, cluster.DispatcherOptions{})
	if err != nil {
		return err
	}
	defer stop()

	h, err := d.Open(p, serve.OpenOptions{MaxInFlight: len(want)})
	if err != nil {
		return err
	}
	defer h.Close()
	for f := range want {
		if _, err := h.TryFeed(nil); err != nil {
			return fmt.Errorf("feed %d: %w", f, err)
		}
	}
	outputs := compiled.Graph.Outputs()
	for f := range want {
		res, err := h.Collect(execTimeout)
		if err != nil {
			return fmt.Errorf("collect %d: %w", f, err)
		}
		if res.Seq != int64(f) {
			return fmt.Errorf("collected frame %d, want %d", res.Seq, f)
		}
		cmpErr := func() error {
			for _, out := range outputs {
				name := out.Name()
				if err := compareWindows(res.Outputs[name], want[f][name]); err != nil {
					return fmt.Errorf("output %q frame %d: %w", name, f, err)
				}
			}
			return nil
		}()
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
		if cmpErr != nil {
			return cmpErr
		}
	}
	if err := h.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	return nil
}

// checkPartitioned streams the case through partitioned sessions: the
// compiled graph is split by the placement layer across a 2-worker and
// then a 3-worker fleet, with cut-edge traffic relayed through the
// dispatcher, and every frame must still match the oracle bit for bit.
// Small cases whose placement collapses to one partition run whole —
// that fallback is part of the contract and stays under test.
func checkPartitioned(compiled *core.Compiled, sources map[string]frame.Generator,
	want []map[string][]frame.Window) error {

	for _, workers := range []int{2, 3} {
		if err := checkPartitionedFleet(compiled, sources, want, workers); err != nil {
			return fmt.Errorf("%d workers: %w", workers, err)
		}
	}
	return nil
}

func checkPartitionedFleet(compiled *core.Compiled, sources map[string]frame.Generator,
	want []map[string][]frame.Window, workers int) error {

	d, _, stop, err := cluster.LoopbackFleet(workers, cluster.DispatcherOptions{Partitions: workers},
		func(i int) *cluster.Worker {
			reg := serve.NewRegistry(machine.Embedded())
			// Each worker registers the same compiled template; sessions
			// clone it, so sharing across registries is safe.
			if _, err := reg.AddCompiled("case", "case", compiled, sources); err != nil {
				panic(err)
			}
			return cluster.NewWorker(reg, cluster.WorkerOptions{Name: fmt.Sprintf("conformance%d", i)})
		})
	if err != nil {
		return err
	}
	defer stop()

	reg := serve.NewRegistry(machine.Embedded())
	p, err := reg.AddCompiled("case", "case", compiled, sources)
	if err != nil {
		return err
	}
	h, err := d.Open(p, serve.OpenOptions{MaxInFlight: len(want)})
	if err != nil {
		return err
	}
	defer h.Close()
	for f := range want {
		if _, err := h.TryFeed(nil); err != nil {
			return fmt.Errorf("feed %d: %w", f, err)
		}
	}
	outputs := compiled.Graph.Outputs()
	for f := range want {
		res, err := h.Collect(execTimeout)
		if err != nil {
			return fmt.Errorf("collect %d: %w", f, err)
		}
		if res.Seq != int64(f) {
			return fmt.Errorf("collected frame %d, want %d", res.Seq, f)
		}
		cmpErr := func() error {
			for _, out := range outputs {
				name := out.Name()
				if err := compareWindows(res.Outputs[name], want[f][name]); err != nil {
					return fmt.Errorf("output %q frame %d: %w", name, f, err)
				}
			}
			return nil
		}()
		for _, ws := range res.Outputs {
			for _, w := range ws {
				w.Release()
			}
		}
		if cmpErr != nil {
			return cmpErr
		}
	}
	if err := h.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	return nil
}
