package kernel

import (
	"strings"
	"testing"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// scriptCtx is a graph.RunContext with pre-scripted input streams and
// recorded sends, for driving Runner FSMs in isolation.
type scriptCtx struct {
	node *graph.Node
	in   map[string][]graph.Item
	out  map[string][]graph.Item
}

func newScriptCtx(n *graph.Node) *scriptCtx {
	return &scriptCtx{
		node: n,
		in:   make(map[string][]graph.Item),
		out:  make(map[string][]graph.Item),
	}
}

func (c *scriptCtx) Node() *graph.Node { return c.node }

func (c *scriptCtx) Recv(input string) (graph.Item, bool) {
	q := c.in[input]
	if len(q) == 0 {
		return graph.Item{}, false
	}
	it := q[0]
	c.in[input] = q[1:]
	return it, true
}

func (c *scriptCtx) Send(output string, it graph.Item) {
	c.out[output] = append(c.out[output], it)
}

// feedFrame scripts a scan-order frame of 1×1 samples with EOL/EOF.
func (c *scriptCtx) feedFrame(input string, f frame.Window, seq int64) {
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			c.in[input] = append(c.in[input], graph.DataItem(frame.Scalar(f.At(x, y))))
		}
		c.in[input] = append(c.in[input], graph.TokenItem(token.EOL(int64(y))))
	}
	c.in[input] = append(c.in[input], graph.TokenItem(token.EOF(seq)))
}

func runner(t *testing.T, n *graph.Node) graph.Runner {
	t.Helper()
	r, ok := graph.RunnerBehavior(n)
	if !ok {
		t.Fatalf("%s is not a Runner", n.Name())
	}
	return r
}

func dataOf(items []graph.Item) []frame.Window {
	var out []frame.Window
	for _, it := range items {
		if !it.IsToken {
			out = append(out, it.Win)
		}
	}
	return out
}

func TestBufferRunnerProducesWindows(t *testing.T) {
	const W, H, K = 6, 5, 3
	n := Buffer("B", BufferPlan{DataW: W, DataH: H, WinW: K, WinH: K, StepX: 1, StepY: 1})
	ctx := newScriptCtx(n)
	img := frame.LCG(1, W, H)
	ctx.feedFrame("in", img, 0)
	if err := runner(t, n).Run(ctx); err != nil {
		t.Fatal(err)
	}
	wins := dataOf(ctx.out["out"])
	nX, nY := W-K+1, H-K+1
	if len(wins) != nX*nY {
		t.Fatalf("windows = %d, want %d", len(wins), nX*nY)
	}
	for i, w := range wins {
		x, y := i%nX, i/nX
		if !w.Equal(img.Sub(x, y, K, K)) {
			t.Fatalf("window %d contents wrong", i)
		}
	}
}

func TestBufferRunnerRejectsShortRow(t *testing.T) {
	n := Buffer("B", BufferPlan{DataW: 4, DataH: 2, WinW: 2, WinH: 2, StepX: 1, StepY: 1})
	ctx := newScriptCtx(n)
	// Only 3 samples before the EOL (row should have 4).
	for i := 0; i < 3; i++ {
		ctx.in["in"] = append(ctx.in["in"], graph.DataItem(frame.Scalar(1)))
	}
	ctx.in["in"] = append(ctx.in["in"], graph.TokenItem(token.EOL(0)))
	err := runner(t, n).Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "EOL after 3 of 4") {
		t.Fatalf("short row not rejected: %v", err)
	}
}

func TestBufferRunnerRejectsOversizedItems(t *testing.T) {
	n := Buffer("B", BufferPlan{DataW: 4, DataH: 2, WinW: 2, WinH: 2, StepX: 1, StepY: 1})
	ctx := newScriptCtx(n)
	ctx.in["in"] = append(ctx.in["in"], graph.DataItem(frame.NewWindow(2, 2)))
	if err := runner(t, n).Run(ctx); err == nil {
		t.Fatal("oversized item accepted")
	}
}

func TestBufferRunnerRejectsOverflow(t *testing.T) {
	n := Buffer("B", BufferPlan{DataW: 2, DataH: 1, WinW: 1, WinH: 1, StepX: 1, StepY: 1})
	ctx := newScriptCtx(n)
	for i := 0; i < 3; i++ { // one sample too many before EOL
		ctx.in["in"] = append(ctx.in["in"], graph.DataItem(frame.Scalar(1)))
	}
	if err := runner(t, n).Run(ctx); err == nil {
		t.Fatal("row overflow accepted")
	}
}

func TestJoinRRRunnerTokenSkew(t *testing.T) {
	n := JoinRR("J", 2, geom.Sz(1, 1))
	ctx := newScriptCtx(n)
	// Branch 0 delivers EOF; branch 1 delivers a mismatched token.
	ctx.in["in0"] = append(ctx.in["in0"], graph.TokenItem(token.EOF(0)))
	ctx.in["in1"] = append(ctx.in["in1"], graph.TokenItem(token.EOL(0)))
	err := runner(t, n).Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "token skew") {
		t.Fatalf("token skew not detected: %v", err)
	}
}

func TestJoinRRRunnerBranchClosedMidToken(t *testing.T) {
	n := JoinRR("J", 2, geom.Sz(1, 1))
	ctx := newScriptCtx(n)
	ctx.in["in0"] = append(ctx.in["in0"], graph.TokenItem(token.EOF(0)))
	// in1 empty: closed.
	err := runner(t, n).Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "closed mid-token") {
		t.Fatalf("mid-token close not detected: %v", err)
	}
}

func TestSplitColumnsRunnerShortRow(t *testing.T) {
	stripes := ColumnStripes(6, 3, 1, 2)
	n := SplitColumns("S", stripes, 6)
	ctx := newScriptCtx(n)
	for i := 0; i < 5; i++ {
		ctx.in["in"] = append(ctx.in["in"], graph.DataItem(frame.Scalar(1)))
	}
	ctx.in["in"] = append(ctx.in["in"], graph.TokenItem(token.EOL(0)))
	err := runner(t, n).Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "EOL after 5 of 6") {
		t.Fatalf("short row not detected: %v", err)
	}
}

func TestJoinColumnsRunnerMissingEOL(t *testing.T) {
	n := JoinColumns("J", []int{2, 2}, geom.Sz(1, 1))
	ctx := newScriptCtx(n)
	// Branch 0 delivers its two items but then data instead of EOL.
	for i := 0; i < 3; i++ {
		ctx.in["in0"] = append(ctx.in["in0"], graph.DataItem(frame.Scalar(1)))
	}
	err := runner(t, n).Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "missing EOL") {
		t.Fatalf("missing EOL not detected: %v", err)
	}
}

func TestJoinColumnsRunnerEOFSkew(t *testing.T) {
	n := JoinColumns("J", []int{1, 1}, geom.Sz(1, 1))
	ctx := newScriptCtx(n)
	ctx.in["in0"] = append(ctx.in["in0"], graph.TokenItem(token.EOF(0)))
	// Branch 1 has data where EOF is required.
	ctx.in["in1"] = append(ctx.in["in1"], graph.DataItem(frame.Scalar(1)))
	err := runner(t, n).Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "EOF skew") {
		t.Fatalf("EOF skew not detected: %v", err)
	}
}

func TestInsetRunnerRegeneratesRows(t *testing.T) {
	n := Inset("I", InsetPlan{InW: 4, InH: 3, L: 1, R: 1, T: 1, B: 1}, geom.Sz(1, 1))
	ctx := newScriptCtx(n)
	img := frame.Gradient(0, 4, 3)
	ctx.feedFrame("in", img, 0)
	if err := runner(t, n).Run(ctx); err != nil {
		t.Fatal(err)
	}
	data := dataOf(ctx.out["out"])
	if len(data) != 2 {
		t.Fatalf("kept = %d, want 2", len(data))
	}
	if data[0].Value() != img.At(1, 1) || data[1].Value() != img.At(2, 1) {
		t.Error("inset kept wrong samples")
	}
	// EOL regenerated once, EOF forwarded once.
	var eols, eofs int
	for _, it := range ctx.out["out"] {
		if it.IsToken {
			switch it.Tok.Kind {
			case token.EndOfLine:
				eols++
			case token.EndOfFrame:
				eofs++
			}
		}
	}
	if eols != 1 || eofs != 1 {
		t.Errorf("tokens = %d EOL, %d EOF", eols, eofs)
	}
}

func TestPadRunnerShortRow(t *testing.T) {
	n := Pad("P", PadPlan{InW: 3, InH: 2, L: 1, R: 1, T: 0, B: 0})
	ctx := newScriptCtx(n)
	ctx.in["in"] = append(ctx.in["in"],
		graph.DataItem(frame.Scalar(1)),
		graph.TokenItem(token.EOL(0)))
	err := runner(t, n).Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "EOL after 1 of 3") {
		t.Fatalf("short row not detected: %v", err)
	}
}

func TestReplicateRunnerCopiesEverything(t *testing.T) {
	n := Replicate("R", 2, geom.Sz(2, 2))
	ctx := newScriptCtx(n)
	ctx.in["in"] = append(ctx.in["in"],
		graph.DataItem(frame.NewWindow(2, 2)),
		graph.TokenItem(token.EOF(0)))
	if err := runner(t, n).Run(ctx); err != nil {
		t.Fatal(err)
	}
	for _, out := range []string{"out0", "out1"} {
		if len(ctx.out[out]) != 2 {
			t.Errorf("%s got %d items, want 2", out, len(ctx.out[out]))
		}
	}
}

func TestSplitRRRunnerRoundRobin(t *testing.T) {
	n := SplitRR("S", 3, geom.Sz(1, 1))
	ctx := newScriptCtx(n)
	for i := 0; i < 7; i++ {
		ctx.in["in"] = append(ctx.in["in"], graph.DataItem(frame.Scalar(float64(i))))
	}
	if err := runner(t, n).Run(ctx); err != nil {
		t.Fatal(err)
	}
	// Items 0,3,6 to out0; 1,4 to out1; 2,5 to out2.
	if len(ctx.out["out0"]) != 3 || len(ctx.out["out1"]) != 2 || len(ctx.out["out2"]) != 2 {
		t.Fatalf("distribution wrong: %d/%d/%d",
			len(ctx.out["out0"]), len(ctx.out["out1"]), len(ctx.out["out2"]))
	}
	if ctx.out["out0"][1].Win.Value() != 3 {
		t.Error("round-robin order wrong")
	}
}

func TestFeedbackRunnerInitialValues(t *testing.T) {
	n := Feedback("F", geom.Sz(1, 1), []frame.Window{frame.Scalar(7), frame.Scalar(8)})
	ctx := newScriptCtx(n)
	ctx.in["in"] = append(ctx.in["in"], graph.DataItem(frame.Scalar(9)))
	if err := runner(t, n).Run(ctx); err != nil {
		t.Fatal(err)
	}
	got := dataOf(ctx.out["out"])
	if len(got) != 3 || got[0].Value() != 7 || got[1].Value() != 8 || got[2].Value() != 9 {
		t.Fatalf("feedback emissions wrong: %v", got)
	}
}

func TestFeedbackInitialSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched initial window accepted")
		}
	}()
	Feedback("F", geom.Sz(1, 1), []frame.Window{frame.NewWindow(2, 2)})
}

func TestBufferCustomTokenPassThrough(t *testing.T) {
	n := Buffer("B", BufferPlan{DataW: 2, DataH: 1, WinW: 1, WinH: 1, StepX: 1, StepY: 1})
	ctx := newScriptCtx(n)
	ctx.in["in"] = append(ctx.in["in"],
		graph.DataItem(frame.Scalar(1)),
		graph.TokenItem(token.NewCustom("mark", 0)),
		graph.DataItem(frame.Scalar(2)),
		graph.TokenItem(token.EOL(0)),
		graph.TokenItem(token.EOF(0)))
	if err := runner(t, n).Run(ctx); err != nil {
		t.Fatal(err)
	}
	// Custom token passes through in order between the two windows.
	var sawCustom bool
	for _, it := range ctx.out["out"] {
		if it.IsToken && it.Tok.Kind == token.Custom {
			sawCustom = true
		}
	}
	if !sawCustom {
		t.Error("custom token dropped by buffer")
	}
}
