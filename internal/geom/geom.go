package geom

import "fmt"

// Size is a two-dimensional extent in samples (width × height).
type Size struct {
	W int
	H int
}

// Sz is shorthand for Size{w, h}.
func Sz(w, h int) Size { return Size{W: w, H: h} }

// Area returns W*H.
func (s Size) Area() int { return s.W * s.H }

// IsPositive reports whether both dimensions are >= 1.
func (s Size) IsPositive() bool { return s.W >= 1 && s.H >= 1 }

// Contains reports whether o fits inside s.
func (s Size) Contains(o Size) bool { return o.W <= s.W && o.H <= s.H }

// Max returns the element-wise maximum of s and o.
func (s Size) Max(o Size) Size {
	if o.W > s.W {
		s.W = o.W
	}
	if o.H > s.H {
		s.H = o.H
	}
	return s
}

func (s Size) String() string { return fmt.Sprintf("(%dx%d)", s.W, s.H) }

// Step is the per-iteration window advance in X and Y.
type Step struct {
	X int
	Y int
}

// St is shorthand for Step{x, y}.
func St(x, y int) Step { return Step{X: x, Y: y} }

// IsPositive reports whether both components are >= 1.
func (st Step) IsPositive() bool { return st.X >= 1 && st.Y >= 1 }

func (st Step) String() string { return fmt.Sprintf("[%d,%d]", st.X, st.Y) }

// Offset is an exact 2-D displacement; fractional components arise for
// downsampling kernels (paper §II-A footnote 2).
type Offset struct {
	X Frac
	Y Frac
}

// Off is shorthand for an integer offset.
func Off(x, y int64) Offset { return Offset{X: FInt(x), Y: FInt(y)} }

// OffF is shorthand for a fractional offset.
func OffF(x, y Frac) Offset { return Offset{X: x, Y: y} }

// Add returns o + p.
func (o Offset) Add(p Offset) Offset { return Offset{X: o.X.Add(p.X), Y: o.Y.Add(p.Y)} }

// Sub returns o - p.
func (o Offset) Sub(p Offset) Offset { return Offset{X: o.X.Sub(p.X), Y: o.Y.Sub(p.Y)} }

// Equal reports whether both components match exactly.
func (o Offset) Equal(p Offset) bool { return o.X.Equal(p.X) && o.Y.Equal(p.Y) }

// IsZero reports whether both components are zero.
func (o Offset) IsZero() bool { return o.X.IsZero() && o.Y.IsZero() }

func (o Offset) String() string { return fmt.Sprintf("[%s,%s]", o.X, o.Y) }

// Rect is a half-open rectangle [X0,X1) × [Y0,Y1) in sample coordinates.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// R constructs a rectangle.
func R(x0, y0, x1, y1 int) Rect { return Rect{X0: x0, Y0: y0, X1: x1, Y1: y1} }

// RectFromSize returns the rectangle [0,W)×[0,H).
func RectFromSize(s Size) Rect { return Rect{X1: s.W, Y1: s.H} }

// W returns the width of r (0 if degenerate).
func (r Rect) W() int {
	if r.X1 <= r.X0 {
		return 0
	}
	return r.X1 - r.X0
}

// H returns the height of r (0 if degenerate).
func (r Rect) H() int {
	if r.Y1 <= r.Y0 {
		return 0
	}
	return r.Y1 - r.Y0
}

// Empty reports whether r has zero area.
func (r Rect) Empty() bool { return r.W() == 0 || r.H() == 0 }

// Size returns the extent of r.
func (r Rect) Size() Size { return Size{W: r.W(), H: r.H()} }

// Intersect returns the intersection of r and o.
func (r Rect) Intersect(o Rect) Rect {
	if o.X0 > r.X0 {
		r.X0 = o.X0
	}
	if o.Y0 > r.Y0 {
		r.Y0 = o.Y0
	}
	if o.X1 < r.X1 {
		r.X1 = o.X1
	}
	if o.Y1 < r.Y1 {
		r.Y1 = o.Y1
	}
	if r.X1 < r.X0 {
		r.X1 = r.X0
	}
	if r.Y1 < r.Y0 {
		r.Y1 = r.Y0
	}
	return r
}

// Union returns the bounding rectangle of r and o.
func (r Rect) Union(o Rect) Rect {
	if o.Empty() {
		return r
	}
	if r.Empty() {
		return o
	}
	if o.X0 < r.X0 {
		r.X0 = o.X0
	}
	if o.Y0 < r.Y0 {
		r.Y0 = o.Y0
	}
	if o.X1 > r.X1 {
		r.X1 = o.X1
	}
	if o.Y1 > r.Y1 {
		r.Y1 = o.Y1
	}
	return r
}

// Shift translates r by (dx, dy).
func (r Rect) Shift(dx, dy int) Rect {
	return Rect{X0: r.X0 + dx, Y0: r.Y0 + dy, X1: r.X1 + dx, Y1: r.Y1 + dy}
}

// Contains reports whether o lies fully within r.
func (r Rect) Contains(o Rect) bool {
	if o.Empty() {
		return true
	}
	return o.X0 >= r.X0 && o.Y0 >= r.Y0 && o.X1 <= r.X1 && o.Y1 <= r.Y1
}

func (r Rect) String() string { return fmt.Sprintf("[%d,%d)x[%d,%d)", r.X0, r.X1, r.Y0, r.Y1) }

// Iterations returns how many window positions fit when sliding a window
// of size win with the given step across data of size data, in each
// dimension. It returns (0,0) if the window does not fit at all.
func Iterations(data, win Size, step Step) (nx, ny int) {
	if !data.IsPositive() || !win.IsPositive() || !step.IsPositive() {
		return 0, 0
	}
	if win.W > data.W || win.H > data.H {
		return 0, 0
	}
	nx = (data.W-win.W)/step.X + 1
	ny = (data.H-win.H)/step.Y + 1
	return nx, ny
}

// Halo returns the border lost when sliding win with step across data:
// size - step in each dimension (paper §III-A), clamped at zero.
func Halo(win Size, step Step) Size {
	w := win.W - step.X
	h := win.H - step.Y
	if w < 0 {
		w = 0
	}
	if h < 0 {
		h = 0
	}
	return Size{W: w, H: h}
}
