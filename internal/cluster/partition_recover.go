package cluster

// Per-partition recovery and live migration (protocol v7). When one
// worker of a partitioned session dies or drains, only its partition
// moves: the frontend re-plans the dead partition onto a survivor,
// reopens it with ReopenPartition carrying the session's resume
// watermarks, replays its feed history and inbound cut-edge logs paced
// by the fresh instance's credit returns, and swallows the replayed
// instance's re-acknowledgements so the surviving producers' credit
// windows stay consistent. Downstream, the worker suppresses results
// below the delivery watermark and the frontend drops anything that
// still slips through — at-most-once, byte-identical to a session that
// never lost the worker.
//
// Correctness leans on two determinism facts: generators key on the
// absolute frame index, so a replayed feed history reproduces the exact
// stream; and the worker's edge-credit flushes fire at fixed
// consumption counts, so the reopened consumer re-flushes exactly the
// credits the dead instance had flushed — the swallow debt always
// drains to zero and the replay can hand over to live relay.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"blockpar/internal/serve"
	"blockpar/internal/wire"
)

// beginRecoveryLocked flags partition idx as recovering: feeds pause
// (TryFeed reports ErrQueueFull) and every cut edge feeding idx starts
// buffering into its log instead of relaying. Caller holds ps.mu.
func (ps *partitionedSession) beginRecoveryLocked(idx int) {
	ps.recovering = true
	ps.recoveringIdx = idx
	for i := range ps.plan.Cuts {
		if ps.plan.Cuts[i].To == idx {
			ps.cuts[i].buffering = true
		}
	}
}

// connLost reacts to a partition's worker connection dying. One
// partition down recovers in place; a second failure mid-recovery, or a
// session past its replay budget, ends the session with a typed error.
func (h *partitionHalf) connLost(cause error) {
	ps := h.ps
	ps.mu.Lock()
	if ps.ended {
		ps.mu.Unlock()
		return
	}
	if len(ps.halves) != len(ps.plan.Partitions) {
		// Still co-scheduling: openPartitioned surfaces the failure as a
		// placement error, not a dead handle.
		ps.mu.Unlock()
		ps.fail(fmt.Errorf("%w: partition %d: %v", serve.ErrSessionLost, h.idx, cause))
		return
	}
	if ps.halves[h.idx] != h {
		// A stale, already-replaced half; nothing to do.
		ps.mu.Unlock()
		return
	}
	if ps.recovering {
		if ps.recoveringIdx == h.idx {
			// The replacement under recovery died; the replay goroutines
			// observe the dead connection and the retry loop moves on.
			ps.mu.Unlock()
			return
		}
		ps.mu.Unlock()
		ps.fail(fmt.Errorf("%w: partition %d lost while partition %d recovers: %v",
			serve.ErrSessionLost, h.idx, ps.recoveringIdx, cause))
		return
	}
	if ps.logFull {
		ps.mu.Unlock()
		ps.fail(fmt.Errorf("%w: partition %d on %s: %v (session past its replay budget)",
			serve.ErrSessionLost, h.idx, h.w.addr, cause))
		return
	}
	ps.beginRecoveryLocked(h.idx)
	ps.mu.Unlock()
	h.stopRelay()
	go ps.recoverPartition(h.idx, cause, false)
}

// drainClose migrates this partition off a draining worker: the
// resident instance is aborted and the ordinary recovery path rebuilds
// it on a survivor, invisibly to the client. When the session cannot
// migrate — close already in flight, another recovery running, or the
// replay budget spent — it falls back to the pre-v7 quiesce-and-close.
func (h *partitionHalf) drainClose(w *workerRef) {
	ps := h.ps
	ps.mu.Lock()
	if ps.ended || len(ps.halves) != len(ps.plan.Partitions) || ps.halves[h.idx] != h {
		ps.mu.Unlock()
		return
	}
	if ps.closeSent {
		ps.mu.Unlock()
		return
	}
	if ps.recovering {
		// A recovery is already detaching the session from a worker —
		// possibly this very migration, when the drain heartbeat races
		// the worker's own Goaway. Closing here would end the client's
		// stream early; if this worker still hosts a partition when its
		// drain deadline passes, the force-abort lands on the ordinary
		// crash-recovery path instead.
		ps.mu.Unlock()
		return
	}
	if ps.logFull {
		if ps.noFeed == nil {
			ps.noFeed = fmt.Errorf("cluster: worker %s is draining", w.addr)
		}
		ps.closeSent = true
		ps.mu.Unlock()
		ps.sendClose()
		return
	}
	ps.beginRecoveryLocked(h.idx)
	ps.mu.Unlock()
	h.stopRelay()
	// Abort the resident instance before unregistering its sid: the
	// worker drops the partition on wire.Error without reporting back,
	// and unregister may hang up a drained-idle connection.
	h.conn.Write(&wire.Error{SID: h.sid, Msg: "partition migrating off draining worker"})
	h.w.unregister(h.conn, h.sid)
	go ps.recoverPartition(h.idx, fmt.Errorf("cluster: worker %s draining", w.addr), true)
}

// recoverPartition re-homes partition idx: pick a replacement worker,
// reopen and replay, retry until the failover window closes. Runs on
// its own goroutine; migration says whether this counts as a live
// migration (drain) or a failover (crash) in /metrics.
func (ps *partitionedSession) recoverPartition(idx int, cause error, migration bool) {
	d := ps.d
	deadline := time.Now().Add(d.opts.FailoverTimeout)
	if !ps.deadline.IsZero() && ps.deadline.Before(deadline) {
		deadline = ps.deadline
	}
	lastErr := cause
	for {
		select {
		case <-ps.done:
			return
		case <-d.closed:
			ps.fail(fmt.Errorf("%w: dispatcher closed during partition recovery: %v",
				serve.ErrSessionLost, lastErr))
			return
		default:
		}
		if time.Now().After(deadline) {
			d.shedTotal.Add(1)
			ps.fail(fmt.Errorf("%w: %w: partition %d not recovered within failover window: %v",
				serve.ErrSessionLost, serve.ErrUnavailable, idx, lastErr))
			return
		}
		w := ps.pickRecoveryWorker(idx)
		if w == nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		err := ps.reopenOn(w, idx, deadline)
		if err == nil {
			if migration {
				d.sessionsMigrated.Add(1)
			} else {
				d.partitionsFailedOver.Add(1)
			}
			ps.migrateNextDraining()
			return
		}
		if errors.Is(err, errSessionEnded) {
			return
		}
		lastErr = err
	}
}

// migrateNextDraining rolls a drain across co-located partitions.
// Recoveries are serialized per session, so when two partitions share
// a draining worker only the first drainClose can start moving; the
// second returns and would otherwise sit until the worker's drain
// deadline force-aborts it as abandoned work. Each completed recovery
// therefore kicks the next half still resident on a draining worker.
// Progress is monotone — pickRecoveryWorker never places on a
// draining worker — so the roll terminates.
func (ps *partitionedSession) migrateNextDraining() {
	ps.mu.Lock()
	if ps.ended || ps.closeSent || ps.recovering || ps.logFull ||
		len(ps.halves) != len(ps.plan.Partitions) {
		ps.mu.Unlock()
		return
	}
	halves := make([]*partitionHalf, len(ps.halves))
	copy(halves, ps.halves)
	ps.mu.Unlock()
	for _, h := range halves {
		h.w.mu.Lock()
		draining := h.w.draining
		h.w.mu.Unlock()
		if draining {
			h.drainClose(h.w)
			return
		}
	}
}

// pickRecoveryWorker chooses the dead partition's new home. The plan
// itself never changes — the partition keeps its node set, so every
// structural invariant placement.Validate enforced at planning time
// (dependence edges within a partition, the acyclic partition quotient)
// is placement-independent and holds wherever the partition lands.
// Workers not already hosting another partition of this session are
// preferred to keep the fault domains spread; a shrunken fleet falls
// back to co-locating two partitions on one worker.
func (ps *partitionedSession) pickRecoveryWorker(idx int) *workerRef {
	resident := make(map[*workerRef]bool)
	ps.mu.Lock()
	for i, h := range ps.halves {
		if i != idx {
			resident[h.w] = true
		}
	}
	ps.mu.Unlock()
	var distinct, shared *workerRef
	var dLoad, sLoad int
	for _, w := range ps.d.snapshot() {
		if !w.placeable() {
			continue
		}
		load := w.sessionCount()
		if !resident[w] {
			if distinct == nil || load < dLoad {
				distinct, dLoad = w, load
			}
		} else if shared == nil || load < sLoad {
			shared, sLoad = w, load
		}
	}
	if distinct != nil {
		return distinct
	}
	return shared
}

// edgeAttempt snapshots one cut edge's watermarks at the start of a
// recovery attempt, under ps.mu, so the ReopenPartition frame and the
// replay agree on one consistent cut of the stream state.
type edgeAttempt struct {
	credit  uint32 // initial window granted to the reopened endpoint
	skip    uint64 // out-edge: items the new producer re-discards
	ackedAt uint64 // out-edge: credits relayed so far; install flushes the delta
}

// reopenOn runs one recovery attempt against worker w: snapshot,
// reopen, install, replay, hand over. Any error (except a concurrent
// session end) retires the half-built replacement and the caller
// retries elsewhere.
func (ps *partitionedSession) reopenOn(w *workerRef, idx int, deadline time.Time) error {
	ps.mu.Lock()
	if ps.ended {
		ps.mu.Unlock()
		return errSessionEnded
	}
	if ps.logFull {
		ps.mu.Unlock()
		return fmt.Errorf("cluster: replay log released during recovery")
	}
	marks := make(map[uint32]edgeAttempt)
	var inEdges []int
	for i := range ps.plan.Cuts {
		c := &ps.plan.Cuts[i]
		es := &ps.cuts[i]
		switch idx {
		case c.To:
			// The dead partition consumed this edge: replay the full log
			// and swallow the re-acknowledgements the producer was already
			// credited for. A fresh attempt re-arms both (a previous
			// attempt may have flipped the edge or drained part of the
			// debt before failing).
			es.buffering = true
			es.swallow = es.acked
			if es.eosLogged {
				es.eosSent = false
			}
			marks[c.ID] = edgeAttempt{credit: uint32(c.Credit)}
			inEdges = append(inEdges, i)
		case c.From:
			// The dead partition produced this edge: the new instance
			// re-produces from the start, discards the already-relayed
			// prefix, and inherits the live window minus what the
			// consumer still holds.
			marks[c.ID] = edgeAttempt{
				credit:  uint32(uint64(c.Credit) - (es.sent - es.acked)),
				skip:    es.sent,
				ackedAt: es.acked,
			}
		}
	}
	resumeResults := ps.delivered[idx]
	feedTotal := ps.fed
	ps.mu.Unlock()

	h2, err := w.placeReopen(ps, idx, resumeResults, marks)
	if err != nil {
		return err
	}

	// Install: from here the half receives results, credits, and edge
	// traffic like any other; out-edge credits that accrued between the
	// snapshot and now are flushed as a delta so nothing is lost to the
	// dead half's stopped relay queue.
	type grant struct {
		edge uint32
		n    uint64
	}
	var grants []grant
	ps.mu.Lock()
	if ps.ended {
		ps.mu.Unlock()
		h2.retire("session ended during recovery")
		return errSessionEnded
	}
	ps.halves[idx] = h2
	for i := range ps.plan.Cuts {
		c := &ps.plan.Cuts[i]
		if c.From != idx {
			continue
		}
		if delta := ps.cuts[i].acked - marks[c.ID].ackedAt; delta > 0 {
			grants = append(grants, grant{edge: c.ID, n: delta})
		}
	}
	ps.mu.Unlock()
	go h2.relay()
	for _, g := range grants {
		h2.enqueueRelay(&wire.EdgeCredit{SID: h2.sid, Edge: g.edge, N: uint32(g.n)})
	}

	// Replay the feed history and each inbound cut edge concurrently:
	// they are independent in-order streams, each paced by its own
	// credit returns, and the partition may need both to make progress.
	errc := make(chan error, len(inEdges)+1)
	go func() { errc <- ps.replayFeeds(h2, feedTotal, deadline) }()
	for _, ei := range inEdges {
		ei := ei
		go func() { errc <- ps.replayEdge(h2, ei, deadline) }()
	}
	var firstErr error
	for i := 0; i < len(inEdges)+1; i++ {
		if err := <-errc; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		if !errors.Is(firstErr, errSessionEnded) {
			h2.retire("partition recovery attempt failed")
		}
		return firstErr
	}

	ps.mu.Lock()
	if ps.ended {
		ps.mu.Unlock()
		return errSessionEnded
	}
	ps.recovering = false
	closeSent := ps.closeSent
	ps.mu.Unlock()
	if closeSent {
		// The client's Close raced the recovery; sendClose skipped this
		// partition, so deliver the deferred close now that the replay
		// is on the wire.
		ps.sendMu.Lock()
		if err := h2.conn.Write(&wire.CloseSession{SID: h2.sid}); err != nil {
			h2.conn.Close()
		}
		ps.sendMu.Unlock()
	}
	return nil
}

// retire tears a failed replacement half out of its worker: the relay
// stops (queued items release), the instance is aborted, and the sid
// unregisters so nothing routes to it again.
func (h *partitionHalf) retire(reason string) {
	h.stopRelay()
	h.conn.Write(&wire.Error{SID: h.sid, Msg: reason})
	h.w.unregister(h.conn, h.sid)
}

// placeReopen opens a replacement instance of partition idx on this
// worker, mirroring placePartition but with ReopenPartition carrying
// the resume watermarks and per-edge credit overrides from marks.
func (w *workerRef) placeReopen(ps *partitionedSession, idx int, resumeResults int64, marks map[uint32]edgeAttempt) (*partitionHalf, error) {
	w.mu.Lock()
	conn := w.conn
	needEnsure := !w.known[ps.p.ID]
	w.mu.Unlock()
	if conn == nil {
		return nil, fmt.Errorf("cluster: worker %s not connected", w.addr)
	}
	if needEnsure {
		if err := w.ensurePipeline(conn, ps.p); err != nil {
			return nil, err
		}
	}
	var deadlineMs uint32
	if !ps.deadline.IsZero() {
		rem := time.Until(ps.deadline)
		if rem <= 0 {
			return nil, fmt.Errorf("cluster: session deadline passed during recovery")
		}
		ms := int64((rem + time.Millisecond - 1) / time.Millisecond)
		if ms > int64(^uint32(0)) {
			ms = int64(^uint32(0))
		}
		deadlineMs = uint32(ms)
	}

	sid := w.d.nextSID.Add(1)
	h := &partitionHalf{ps: ps, idx: idx, w: w, sid: sid, conn: conn}
	h.rcond = sync.NewCond(&h.rmu)
	reply := make(chan *wire.SessionOpened, 1)
	w.mu.Lock()
	if w.conn != conn {
		w.mu.Unlock()
		return nil, fmt.Errorf("cluster: worker %s reconnected during reopen", w.addr)
	}
	w.pending[sid] = reply
	w.sessions[sid] = h
	w.mu.Unlock()

	m := &wire.ReopenPartition{
		SID:           sid,
		Pipeline:      ps.p.ID,
		Partition:     uint32(idx),
		MaxInFlight:   uint32(ps.maxInFlight),
		DeadlineMs:    deadlineMs,
		ResumeResults: resumeResults,
		Nodes:         ps.plan.Partitions[idx].Nodes,
	}
	for _, c := range ps.plan.Cuts {
		spec := wire.EdgeSpec{
			ID: c.ID, Credit: uint32(c.Credit),
			FromNode: c.FromNode, FromPort: c.FromPort,
			ToNode: c.ToNode, ToPort: c.ToPort,
		}
		switch idx {
		case c.To:
			spec.Dir = wire.EdgeIn
		case c.From:
			spec.Dir = wire.EdgeOut
			mark := marks[c.ID]
			spec.Credit = mark.credit
			m.Resume = append(m.Resume, wire.EdgeResume{Edge: c.ID, SkipItems: mark.skip})
		default:
			continue
		}
		m.Edges = append(m.Edges, spec)
	}
	if err := conn.Write(m); err != nil {
		w.unregister(conn, sid)
		conn.Close()
		return nil, fmt.Errorf("cluster: reopen partition on %s: %w", w.addr, err)
	}
	select {
	case r, ok := <-reply:
		if !ok {
			return nil, fmt.Errorf("cluster: worker %s lost during reopen", w.addr)
		}
		if r.Err != "" {
			w.unregister(conn, sid)
			return nil, fmt.Errorf("cluster: worker %s refused reopened partition: %s", w.addr, r.Err)
		}
	case <-time.After(w.d.opts.OpenTimeout):
		w.unregister(conn, sid)
		return nil, fmt.Errorf("cluster: reopen on %s timed out after %v", w.addr, w.d.opts.OpenTimeout)
	}
	return h, nil
}

// replayFeeds re-delivers the session's feed history to a reopened
// partition that owns input nodes. Pacing mirrors live flow control:
// maxInFlight frames up front, extended by each credit the fresh
// instance returns (h2.credits counts only those — it starts at zero).
func (ps *partitionedSession) replayFeeds(h2 *partitionHalf, total int64, deadline time.Time) error {
	owns := false
	for _, idx := range ps.feedParts {
		if idx == h2.idx {
			owns = true
		}
	}
	if !owns {
		return nil
	}
	for seq := int64(0); seq < total; {
		ps.mu.Lock()
		if ps.ended {
			ps.mu.Unlock()
			return errSessionEnded
		}
		if ps.logFull {
			ps.mu.Unlock()
			return fmt.Errorf("cluster: replay log released during recovery")
		}
		if seq >= int64(ps.maxInFlight)+h2.credits {
			ps.mu.Unlock()
			if err := h2.waitLive(deadline, "feed replay"); err != nil {
				return err
			}
			continue
		}
		m := &wire.Feed{SID: h2.sid, Seq: seq}
		for _, in := range ps.feedLog[seq].inputs {
			if ps.inputOwner[in.Name] != h2.idx {
				continue
			}
			in.Win.Retain(1)
			m.Inputs = append(m.Inputs, in)
		}
		ps.mu.Unlock()
		err := h2.conn.Write(m)
		for _, in := range m.Inputs {
			in.Win.Release()
		}
		if err != nil {
			h2.conn.Close()
			return fmt.Errorf("cluster: feed replay to %s: %w", h2.w.addr, err)
		}
		h2.w.framesRouted.Add(1)
		ps.d.framesReplayed.Add(1)
		seq++
	}
	return nil
}

// replayEdge re-delivers one inbound cut edge's logged items to the
// reopened consumer, then flips the edge back to live relay. The flip
// fires only when the log is exhausted AND the swallow debt is zero:
// at that point the producer's credit window and the new consumer's
// queue agree, so direct relay cannot overflow it.
func (ps *partitionedSession) replayEdge(h2 *partitionHalf, ei int, deadline time.Time) error {
	c := ps.plan.Cuts[ei]
	ps.mu.Lock()
	window := uint64(c.Credit)
	base := ps.cuts[ei].rawAcks // acks from the fresh instance count from here
	ps.mu.Unlock()
	pos := uint64(0)
	for {
		ps.mu.Lock()
		if ps.ended {
			ps.mu.Unlock()
			return errSessionEnded
		}
		if ps.logFull {
			ps.mu.Unlock()
			return fmt.Errorf("cluster: replay log released during recovery")
		}
		es := &ps.cuts[ei]
		allowed := window + (es.rawAcks - base)
		end := uint64(len(es.log))
		if end > allowed {
			end = allowed
		}
		if end > pos+edgeBatchItems {
			end = pos + edgeBatchItems
		}
		if end > pos {
			batch := make([]wire.Item, end-pos)
			copy(batch, es.log[pos:end])
			for _, it := range batch {
				if !it.IsToken {
					it.Win.Retain(1)
				}
			}
			es.sent = end
			ps.mu.Unlock()
			err := h2.conn.Write(&wire.EdgeFrame{SID: h2.sid, Edge: c.ID, Items: batch})
			releaseWireItems(batch)
			if err != nil {
				h2.conn.Close()
				return fmt.Errorf("cluster: edge %d replay to %s: %w", c.ID, h2.w.addr, err)
			}
			pos = end
			continue
		}
		if pos == uint64(len(es.log)) && es.swallow == 0 {
			// Caught up: every logged item re-delivered, every stale ack
			// absorbed. Flip to direct relay atomically with the last
			// replayed write already on the wire — the producer's read
			// loop sees buffering false only after this unlock.
			es.buffering = false
			sendEOS := es.eosLogged && !es.eosSent
			if sendEOS {
				es.eosSent = true
			}
			ps.mu.Unlock()
			if sendEOS {
				if err := h2.conn.Write(&wire.EdgeFrame{SID: h2.sid, Edge: c.ID, EOS: true}); err != nil {
					h2.conn.Close()
					return fmt.Errorf("cluster: edge %d replay to %s: %w", c.ID, h2.w.addr, err)
				}
			}
			return nil
		}
		ps.mu.Unlock()
		if err := h2.waitLive(deadline, fmt.Sprintf("edge %d replay", c.ID)); err != nil {
			return err
		}
	}
}

// waitLive sleeps one pacing tick, failing fast when the replacement's
// connection died under the replay or the recovery deadline passed.
func (h *partitionHalf) waitLive(deadline time.Time, what string) error {
	h.w.mu.Lock()
	alive := h.w.conn == h.conn
	h.w.mu.Unlock()
	if !alive {
		return fmt.Errorf("cluster: worker %s lost during %s", h.w.addr, what)
	}
	if time.Now().After(deadline) {
		return fmt.Errorf("cluster: %s to %s stalled past the failover window", what, h.w.addr)
	}
	time.Sleep(time.Millisecond)
	return nil
}
