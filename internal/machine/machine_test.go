package machine

import "testing"

func TestPresetsValidate(t *testing.T) {
	for _, m := range []Machine{Default(), Embedded(), Small()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	cases := []Machine{
		{},
		{PE: PE{CyclesPerSec: 0, MemWords: 100}},
		{PE: PE{CyclesPerSec: 100, MemWords: 0}},
		{PE: PE{CyclesPerSec: 100, MemWords: 100, ReadCost: -1}},
		{PE: PE{CyclesPerSec: 100, MemWords: 100, WriteCost: -2}},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, m)
		}
	}
}

func TestPresetOrdering(t *testing.T) {
	// The presets exist to be meaningfully different: Default is the
	// strongest, Small the weakest.
	d, e, s := Default(), Embedded(), Small()
	if !(d.PE.CyclesPerSec > e.PE.CyclesPerSec && e.PE.CyclesPerSec > s.PE.CyclesPerSec) {
		t.Error("clock ordering broken")
	}
	if !(d.PE.MemWords > e.PE.MemWords && e.PE.MemWords > s.PE.MemWords) {
		t.Error("memory ordering broken")
	}
}
