// Package frame provides the two-dimensional data carried on stream
// channels: windows (the unit item moved per kernel iteration), whole
// frames, deterministic synthetic frame generators, and golden
// sequential implementations of the paper's filters used to verify the
// transformed applications functionally.
package frame

import (
	"fmt"
	"math"
)

// Window is a row-major 2-D block of samples. It is the value a channel
// carries per kernel iteration: a (1x1) window for pixel streams, a
// (5x5) window for a buffered convolution input, a (32x1) window for
// histogram bins, and so on.
//
// A window is either dense (rows packed back to back, Stride zero) or a
// strided view sharing another window's storage (Stride is the parent's
// row pitch). Views are how the zero-copy data plane avoids per-item
// copies; consumers that index Pix directly must either require
// IsDense or go through At/Row. Storage may additionally be pooled
// (see Alloc); pooled windows follow the retain/release protocol
// described in pool.go.
type Window struct {
	W, H int
	// Stride is the row pitch of Pix in samples; zero means dense
	// (rows of exactly W samples, packed).
	Stride int
	Pix    []float64

	// ref tracks pooled backing storage; nil for plain windows.
	ref *Ref
}

// RowStride returns the distance in Pix between vertically adjacent
// samples.
func (w Window) RowStride() int {
	if w.Stride > 0 {
		return w.Stride
	}
	return w.W
}

// IsDense reports whether Pix is packed row-major with no gaps, i.e.
// Pix[y*W+x] addresses sample (x, y).
func (w Window) IsDense() bool { return w.Stride == 0 || w.Stride == w.W }

// NewWindow allocates a zeroed w×h dense window.
func NewWindow(w, h int) Window {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("frame: invalid window size %dx%d", w, h))
	}
	return Window{W: w, H: h, Pix: make([]float64, w*h)}
}

// Scalar returns a 1x1 window holding v.
func Scalar(v float64) Window {
	return Window{W: 1, H: 1, Pix: []float64{v}}
}

// FromRows builds a dense window from row-major rows; all rows must
// have the same length.
func FromRows(rows [][]float64) Window {
	h := len(rows)
	if h == 0 {
		return Window{}
	}
	w := len(rows[0])
	win := NewWindow(w, h)
	for y, row := range rows {
		if len(row) != w {
			panic("frame: ragged rows")
		}
		copy(win.Pix[y*w:(y+1)*w], row)
	}
	return win
}

// At returns the sample at (x, y). It panics on out-of-range access.
func (w Window) At(x, y int) float64 {
	if x < 0 || x >= w.W || y < 0 || y >= w.H {
		panic(fmt.Sprintf("frame: At(%d,%d) outside %dx%d", x, y, w.W, w.H))
	}
	return w.Pix[y*w.RowStride()+x]
}

// Set stores v at (x, y). It panics on out-of-range access.
func (w Window) Set(x, y int, v float64) {
	if x < 0 || x >= w.W || y < 0 || y >= w.H {
		panic(fmt.Sprintf("frame: Set(%d,%d) outside %dx%d", x, y, w.W, w.H))
	}
	w.Pix[y*w.RowStride()+x] = v
}

// Row returns the y-th row as a slice of exactly W samples, valid for
// dense and strided windows alike.
func (w Window) Row(y int) []float64 {
	s := w.RowStride()
	return w.Pix[y*s : y*s+w.W]
}

// Value returns the single sample of a 1x1 window.
func (w Window) Value() float64 {
	if w.W != 1 || w.H != 1 {
		panic(fmt.Sprintf("frame: Value() on %dx%d window", w.W, w.H))
	}
	return w.Pix[0]
}

// Clone returns an independent dense, unpooled deep copy of the
// window. Kernels use it for any input they keep across firings.
func (w Window) Clone() Window {
	out := Window{W: w.W, H: w.H, Pix: make([]float64, w.W*w.H)}
	s := w.RowStride()
	for y := 0; y < w.H; y++ {
		copy(out.Pix[y*w.W:(y+1)*w.W], w.Pix[y*s:y*s+w.W])
	}
	return out
}

// Dense returns a window whose Pix is packed row-major (Pix[y*W+x]);
// the receiver itself when it already is, a compact copy otherwise.
func (w Window) Dense() Window {
	if w.IsDense() {
		if len(w.Pix) == w.W*w.H {
			return w
		}
		return Window{W: w.W, H: w.H, Pix: w.Pix[:w.W*w.H], ref: w.ref}
	}
	return w.Clone()
}

// Sub returns a dense copy of the sub-window of size sw×sh anchored at
// (x, y).
func (w Window) Sub(x, y, sw, sh int) Window {
	out := NewWindow(sw, sh)
	s := w.RowStride()
	for dy := 0; dy < sh; dy++ {
		srcOff := (y+dy)*s + x
		copy(out.Pix[dy*sw:(dy+1)*sw], w.Pix[srcOff:srcOff+sw])
	}
	return out
}

// View returns a vw×vh window sharing the receiver's storage, anchored
// at (x, y) — the zero-copy counterpart of Sub. The view is valid as
// long as the parent's storage is: it shares any pooled backing, so
// the retain/release protocol covers both. Mutations through either
// window are visible in the other.
func (w Window) View(x, y, vw, vh int) Window {
	if x < 0 || y < 0 || vw < 0 || vh < 0 || x+vw > w.W || y+vh > w.H {
		panic(fmt.Sprintf("frame: View(%d,%d,%dx%d) outside %dx%d", x, y, vw, vh, w.W, w.H))
	}
	s := w.RowStride()
	off := y*s + x
	end := off + (vh-1)*s + vw
	if vw == 0 || vh == 0 {
		end = off
	}
	return Window{W: vw, H: vh, Stride: s, Pix: w.Pix[off:end], ref: w.ref}
}

// Equal reports whether two windows have identical shape and samples.
func (w Window) Equal(o Window) bool {
	if w.W != o.W || w.H != o.H {
		return false
	}
	ws, os := w.RowStride(), o.RowStride()
	for y := 0; y < w.H; y++ {
		wr, or := w.Pix[y*ws:y*ws+w.W], o.Pix[y*os:y*os+w.W]
		for x := range wr {
			if wr[x] != or[x] {
				return false
			}
		}
	}
	return true
}

// AlmostEqual reports shape equality and element-wise |a-b| <= tol.
func (w Window) AlmostEqual(o Window, tol float64) bool {
	if w.W != o.W || w.H != o.H {
		return false
	}
	ws, os := w.RowStride(), o.RowStride()
	for y := 0; y < w.H; y++ {
		wr, or := w.Pix[y*ws:y*ws+w.W], o.Pix[y*os:y*os+w.W]
		for x := range wr {
			if math.Abs(wr[x]-or[x]) > tol {
				return false
			}
		}
	}
	return true
}

func (w Window) String() string {
	return fmt.Sprintf("Window(%dx%d)", w.W, w.H)
}

// Frame is a whole image: a Window with frame-level helpers. Frames are
// what generators produce and what golden reference filters consume.
type Frame = Window

// Windows enumerates, in scan-line order (left-to-right, top-to-bottom),
// every ww×wh window position of f advanced by (sx, sy), calling fn with
// the window's top-left coordinate. It is the canonical iteration-space
// walk shared by golden implementations and tests.
func Windows(f Frame, ww, wh, sx, sy int, fn func(x, y int)) {
	if ww > f.W || wh > f.H || ww < 1 || wh < 1 || sx < 1 || sy < 1 {
		return
	}
	for y := 0; y+wh <= f.H; y += sy {
		for x := 0; x+ww <= f.W; x += sx {
			fn(x, y)
		}
	}
}
