package apps

import "blockpar/internal/geom"

// Sample rates used by the suite: the paper parameterizes inputs by the
// rate data arrives ("the input data arrives one pixel at a time"), so
// frame rate = sample rate / frame area and growing the frame at a
// fixed sample rate grows buffering but not compute — exactly the
// Small/Slow → Big/Slow axis of Figure 11.
const (
	SlowRate int64 = 400_000   // samples per second
	FastRate int64 = 1_500_000 // samples per second
)

// sampleRate converts a samples/sec budget into a frame rate.
func sampleRate(samples int64, w, h int) geom.Frac {
	return geom.F(samples, int64(w)*int64(h))
}

// Small/Big frame dimensions for the image-processing example.
const (
	SmallW, SmallH = 32, 24
	BigW, BigH     = 96, 64
)

// Preset identifies one Figure 11 configuration of the running example.
type Preset struct {
	ID   string
	W, H int
	// Samples is the input sample rate in samples/sec.
	Samples int64
}

// Figure11Presets returns the four size/rate corners of Figure 11.
func Figure11Presets() []Preset {
	return []Preset{
		{ID: "SS", W: SmallW, H: SmallH, Samples: SlowRate},
		{ID: "BS", W: BigW, H: BigH, Samples: SlowRate},
		{ID: "SF", W: SmallW, H: SmallH, Samples: FastRate},
		{ID: "BF", W: BigW, H: BigH, Samples: FastRate},
	}
}

// ImagePreset builds the running example for one Figure 11 preset.
func ImagePreset(p Preset) *App {
	return ImagePipeline("image-"+p.ID, ImageCfg{
		W: p.W, H: p.H, Rate: sampleRate(p.Samples, p.W, p.H), Bins: 32,
	})
}

// Bench is one entry of the Figure 13 suite.
type Bench struct {
	// ID is the paper's benchmark label (1, 1F, 2, 2F, 3, 4, SS, SF,
	// BS, BF, 5).
	ID  string
	App *App
}

// Figure13Suite builds the full benchmark suite of Figure 13.
func Figure13Suite() []Bench {
	benches := []Bench{
		{ID: "1", App: Bayer("bayer", BayerCfg{W: 64, H: 48, Rate: sampleRate(SlowRate, 64, 48)})},
		{ID: "1F", App: Bayer("bayer-fast", BayerCfg{W: 64, H: 48, Rate: sampleRate(FastRate, 64, 48)})},
		{ID: "2", App: HistogramApp("hist", HistCfg{W: 64, H: 48, Rate: sampleRate(SlowRate, 64, 48), Bins: 32})},
		{ID: "2F", App: HistogramApp("hist-fast", HistCfg{W: 64, H: 48, Rate: sampleRate(FastRate, 64, 48), Bins: 32})},
		{ID: "3", App: ParallelBufferTest("parbuf", BufferCfg{W: 256, H: 32, Rate: sampleRate(SlowRate, 256, 32)})},
		{ID: "4", App: MultiConv("multiconv", MultiConvCfg{W: 48, H: 32, Rate: sampleRate(SlowRate, 48, 32), Sizes: []int{3, 5, 7}})},
	}
	for _, p := range Figure11Presets() {
		benches = append(benches, Bench{ID: p.ID, App: ImagePreset(p)})
	}
	benches = append(benches, Bench{
		ID: "5",
		App: ImagePipeline("image-baseline", ImageCfg{
			W: 48, H: 32, Rate: sampleRate(SlowRate, 48, 32), Bins: 32,
		}),
	})
	// Typed variants of benchmarks 1 and 4: the same graphs with u8/f32
	// elements declared on their inputs, exercising the typed data plane.
	benches = append(benches,
		Bench{ID: "1u8", App: BayerU8("bayer-u8", BayerCfg{W: 64, H: 48, Rate: sampleRate(SlowRate, 64, 48)})},
		Bench{ID: "4f32", App: MultiConvF32("multiconv-f32", MultiConvCfg{W: 48, H: 32, Rate: sampleRate(SlowRate, 48, 32), Sizes: []int{3, 5, 7}})},
	)
	// The generalized-connection family: multi-camera analytics
	// (broadcast + windowed sharing) and a wideband channelizer
	// (scatter-gather), exercising every connection family end to end.
	benches = append(benches,
		Bench{ID: "MC", App: MultiCam("multicam", MultiCamCfg{W: 20, H: 12, Rate: sampleRate(SlowRate, 20, 12)})},
		Bench{ID: "WC", App: Channelizer("channelizer", ChannelizerCfg{W: 240, H: 4, Rate: sampleRate(SlowRate, 240, 4)})},
	)
	return benches
}
