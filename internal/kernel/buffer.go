package kernel

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// Buffer builds the compiler-inserted 2-D circular buffer kernel
// (paper §III-B): it converts a scan-order stream of 1×1 samples
// covering a plan.DataW×plan.DataH region into the scan-order stream
// of plan-sized windows. The buffer emits its own end-of-line token
// after the last window of each output row and forwards the
// end-of-frame token after the frame completes, so downstream token
// structure always matches downstream data structure.
//
// The buffer accepts row batches on its input (whole sample rows as
// one item) and emits row batches on its output (a whole row of
// windows packed as one dense span item): it is the pivot of the
// batched data plane, collapsing the per-sample and per-window channel
// traffic into per-row traffic. The logical streams are unchanged —
// the emitted span covers exactly the windows the scalar path would
// emit, in the same order — and a scalar producer degrades to the
// per-sample behavior sample by sample.
//
// Memory is sized to double-buffer the larger of input and output
// (plan.MemoryWords), which is what makes buffers the memory-bound
// kernels that the buffer-splitting transformation targets (§IV-C).
func Buffer(name string, plan BufferPlan) *graph.Node {
	if plan.WinW < 1 || plan.WinH < 1 || plan.StepX < 1 || plan.StepY < 1 {
		panic(fmt.Sprintf("kernel: invalid buffer plan %+v", plan))
	}
	n := graph.NewNode(name, graph.KindBuffer)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(plan.WinW, plan.WinH), geom.St(plan.StepX, plan.StepY))
	n.RegisterMethod("buffer", fsmPerItem, plan.MemoryWords())
	n.RegisterMethodInput("buffer", "in")
	n.RegisterMethodOutput("buffer", "out")
	n.Attrs["label"] = plan.Label()
	n.Behavior = &bufferBehavior{plan: plan}
	return n
}

type bufferBehavior struct {
	plan BufferPlan
	// ring holds the last WinH input rows (modular by row index) as one
	// dense window of the stream's element kind, allocated on the first
	// data item.
	ring frame.Window
	x, y int
}

func (b *bufferBehavior) Clone() graph.Behavior { return &bufferBehavior{plan: b.plan} }

// AcceptsBatch implements graph.BatchAware: sample rows arrive whole.
func (b *bufferBehavior) AcceptsBatch(input string) bool { return input == "in" }

// Plan exposes the buffer parameterization to the transformer and the
// simulator.
func (b *bufferBehavior) Plan() BufferPlan { return b.plan }

func (b *bufferBehavior) reset() {
	b.x, b.y = 0, 0
	if b.ring.W > 0 {
		raw := b.ring.RowBytes(0)[:0]
		for y := 0; y < b.ring.H; y++ {
			raw = b.ring.RowBytes(y)
			for i := range raw {
				raw[i] = 0
			}
		}
	}
}

func (b *bufferBehavior) Run(ctx graph.RunContext) error {
	p := b.plan
	for {
		it, ok := ctx.Recv("in")
		if !ok {
			return nil
		}
		if it.IsToken {
			switch it.Tok.Kind {
			case token.EndOfLine:
				// Input row boundary: consumed silently; the buffer
				// regenerates EOL at its own output-row boundaries.
				if b.x != p.DataW {
					return fmt.Errorf("kernel: buffer %q got EOL after %d of %d samples",
						ctx.Node().Name(), b.x, p.DataW)
				}
				b.x = 0
				b.y++
			case token.EndOfFrame:
				if b.y != p.DataH {
					return fmt.Errorf("kernel: buffer %q got EOF after %d of %d rows",
						ctx.Node().Name(), b.y, p.DataH)
				}
				b.reset()
				ctx.Send("out", graph.TokenItem(it.Tok))
			default:
				// Custom tokens pass through in order.
				ctx.Send("out", it)
			}
			continue
		}
		n := it.BatchN()
		if it.Win.H != 1 || (n == 1 && it.Win.W != 1) || (n > 1 && it.B.Bw != 1) {
			return fmt.Errorf("kernel: buffer %q expects 1x1 samples, got %v",
				ctx.Node().Name(), it)
		}
		if b.x+n > p.DataW || b.y >= p.DataH {
			return fmt.Errorf("kernel: buffer %q overflow at (%d,%d)+%d for %dx%d region",
				ctx.Node().Name(), b.x, b.y, n, p.DataW, p.DataH)
		}
		if b.ring.W == 0 {
			b.ring = frame.NewWindowKind(it.Win.Kind, p.DataW, p.WinH)
		} else if b.ring.Kind != it.Win.Kind {
			return fmt.Errorf("kernel: buffer %q element kind changed mid-stream (%v -> %v)",
				ctx.Node().Name(), b.ring.Kind, it.Win.Kind)
		}
		x0 := b.x
		b.ingest(it, n)
		it.Win.Release()
		b.emitCompleted(ctx, x0, b.x)
	}
}

// ingest copies the item's n samples into the ring row at columns
// [b.x, b.x+n) and advances the column cursor.
func (b *bufferBehavior) ingest(it graph.Item, n int) {
	es := b.ring.Kind.Bytes()
	dst := b.ring.RowBytes(b.y % b.plan.WinH)
	if n == 1 || int(it.B.Sx) == 1 {
		copy(dst[b.x*es:(b.x+n)*es], it.Win.RowBytes(0))
	} else {
		// Strided batch of 1×1 samples (does not occur on the standard
		// producers, but the descriptor allows it).
		for j := 0; j < n; j++ {
			copy(dst[(b.x+j)*es:(b.x+j+1)*es], it.B.Window(it.Win, j).RowBytes(0))
		}
	}
	b.x += n
}

// emitCompleted emits every window whose bottom-right sample lies in
// the just-ingested column range [x0, x1) of row b.y — as one batched
// span item (one window degrades to a plain item) — plus the row's
// end-of-line token when the range completes the window row. For
// scalar ingest (x1 == x0+1) this reproduces the per-sample emission
// of the unbatched buffer exactly.
func (b *bufferBehavior) emitCompleted(ctx graph.RunContext, x0, x1 int) {
	p := b.plan
	wy := b.y - p.WinH + 1
	if wy < 0 || wy%p.StepY != 0 || wy/p.StepY >= p.OutputRows() {
		return
	}
	nwin := p.WindowsPerRow()
	if nwin == 0 {
		return
	}
	// Window wx completes at sample x = wx+WinW-1, so the completed
	// range is step-aligned wx in [x0-WinW+1, x1-WinW], clamped to the
	// row's window positions.
	first := x0 - p.WinW + 1
	if first < 0 {
		first = 0
	}
	if r := first % p.StepX; r != 0 {
		first += p.StepX - r
	}
	last := x1 - p.WinW
	if m := (nwin - 1) * p.StepX; last > m {
		last = m
	}
	if first > last {
		return
	}
	last -= (last - first) % p.StepX
	count := (last-first)/p.StepX + 1
	spanW := (count-1)*p.StepX + p.WinW
	win := frame.AllocKind(b.ring.Kind, spanW, p.WinH)
	es := b.ring.Kind.Bytes()
	for dy := 0; dy < p.WinH; dy++ {
		src := b.ring.RowBytes((wy + dy) % p.WinH)
		copy(win.RowBytes(dy), src[first*es:(first+spanW)*es])
	}
	ctx.Send("out", graph.BatchItem(win, graph.Batch{
		N: int32(count), Sx: int32(p.StepX), Bw: int32(p.WinW),
	}))
	if last == (nwin-1)*p.StepX {
		ctx.Send("out", graph.TokenItem(token.EOL(int64(wy/p.StepY))))
	}
}

// BufferPlanOf returns the plan of a buffer node built by Buffer, for
// transform and simulator introspection.
func BufferPlanOf(n *graph.Node) (BufferPlan, bool) {
	b, ok := n.Behavior.(*bufferBehavior)
	if !ok {
		return BufferPlan{}, false
	}
	return b.plan, true
}
