package sim

import (
	"testing"

	"blockpar/internal/apps"
	"blockpar/internal/core"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/machine"
	"blockpar/internal/mapping"
)

func simpleGainApp(rate geom.Frac) *graph.Graph {
	g := graph.New("sim-gain")
	in := g.AddInput("Input", geom.Sz(8, 4), geom.Sz(1, 1), rate)
	k := g.Add(kernel.Gain("Gain", 2))
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", k, "in")
	g.Connect(k, "out", out, "in")
	return g
}

func TestSimulateGainMeetsRealTime(t *testing.T) {
	m := machine.Embedded()
	// 32 samples per frame at 1000 Hz = 32k samples/s; gain needs
	// (1 read + 4 run + 1 write) cycles per sample = 192k cycles/s,
	// far below 20 MHz.
	g := simpleGainApp(geom.FInt(1000))
	res, err := Simulate(g, mapping.OneToOne(g), Options{Machine: m, Frames: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.RealTimeMet() {
		t.Errorf("real time missed: %d stalls", res.InputStalls)
	}
	if res.FramesOut != 3 {
		t.Errorf("frames out = %d", res.FramesOut)
	}
	// 3 frames at 1000 Hz take just under 3 ms of input; the makespan
	// must be in that ballpark (last sample arrives at ~2.997 ms).
	if res.Time < 0.002 || res.Time > 0.004 {
		t.Errorf("makespan = %v s, expected ~3 ms", res.Time)
	}
	// Utilization must be low and the breakdown populated.
	if u := res.MeanUtilization(); u <= 0 || u > 0.2 {
		t.Errorf("utilization = %v, expected small but positive", u)
	}
	run, read, write := res.Breakdown()
	if run <= 0 || read <= 0 || write <= 0 {
		t.Errorf("breakdown = %v/%v/%v, all must be positive", run, read, write)
	}
}

func TestSimulateDetectsOverload(t *testing.T) {
	// Drive the gain far beyond one PE: 8x4 frames at a rate where
	// per-sample work exceeds the sample interval.
	m := machine.Machine{Name: "tiny", PE: machine.PE{CyclesPerSec: 100_000, MemWords: 512, ReadCost: 1, WriteCost: 1}}
	// 32 samples/frame * 1000 Hz = 32k samples/s * 6 cycles = 192k > 100k.
	g := simpleGainApp(geom.FInt(1000))
	res, err := Simulate(g, mapping.OneToOne(g), Options{Machine: m, Frames: 2, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.RealTimeMet() {
		t.Error("overloaded kernel reported as real-time")
	}
	if res.StallTime <= 0 {
		t.Error("no stall time recorded")
	}
}

// compiledApp compiles a benchmark and returns its graph and analysis.
func compiledApp(t *testing.T, b apps.Bench) *core.Compiled {
	t.Helper()
	c, err := core.Compile(b.App.Graph, core.DefaultConfig())
	if err != nil {
		t.Fatalf("%s: %v", b.ID, err)
	}
	return c
}

// TestSimulateCompiledImagePipeline verifies the paper's central claim
// for the running example: after automatic buffering, alignment, and
// parallelization, the application meets its real-time input rate on
// the simulator under both mappings.
func TestSimulateCompiledImagePipeline(t *testing.T) {
	app := apps.ImagePipeline("sim-image", apps.ImageCfg{
		W: apps.SmallW, H: apps.SmallH,
		Rate: geom.F(apps.FastRate, int64(apps.SmallW*apps.SmallH)),
		Bins: 32,
	})
	c, err := core.Compile(app.Graph, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Embedded()

	one := mapping.OneToOne(c.Graph)
	resOne, err := Simulate(c.Graph, one, Options{Machine: m, Frames: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !resOne.RealTimeMet() {
		t.Errorf("1:1 mapping missed real time: %d stalls, %.2g s late",
			resOne.InputStalls, resOne.StallTime)
	}

	gm, err := mapping.Greedy(c.Graph, c.Analysis, m)
	if err != nil {
		t.Fatal(err)
	}
	resGM, err := Simulate(c.Graph, gm, Options{Machine: m, Frames: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !resGM.RealTimeMet() {
		t.Errorf("greedy mapping missed real time: %d stalls", resGM.InputStalls)
	}

	// Figure 12's point: greedy multiplexing raises mean utilization.
	u1, u2 := resOne.MeanUtilization(), resGM.MeanUtilization()
	if u2 <= u1 {
		t.Errorf("greedy utilization %.3f not above 1:1's %.3f", u2, u1)
	}
	t.Logf("PEs %d -> %d, utilization %.3f -> %.3f (%.2fx)",
		one.NumPEs, gm.NumPEs, u1, u2, u2/u1)
}

func TestSimulateFullSuite(t *testing.T) {
	m := machine.Embedded()
	for _, b := range apps.Figure13Suite() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			c := compiledApp(t, b)
			one := mapping.OneToOne(c.Graph)
			res, err := Simulate(c.Graph, one, Options{Machine: m, Frames: 2})
			if err != nil {
				t.Fatal(err)
			}
			if !res.RealTimeMet() {
				t.Errorf("%s: real time missed under 1:1 (%d stalls, %.3g s)",
					b.ID, res.InputStalls, res.StallTime)
			}
			gm, err := mapping.Greedy(c.Graph, c.Analysis, m)
			if err != nil {
				t.Fatal(err)
			}
			resGM, err := Simulate(c.Graph, gm, Options{Machine: m, Frames: 2})
			if err != nil {
				t.Fatal(err)
			}
			if !resGM.RealTimeMet() {
				t.Errorf("%s: real time missed under greedy (%d stalls)", b.ID, resGM.InputStalls)
			}
		})
	}
}

func TestSimulateDeterministic(t *testing.T) {
	build := func() *Result {
		app := apps.HistogramApp("det", apps.HistCfg{W: 32, H: 16, Rate: geom.FInt(100), Bins: 8})
		c, err := core.Compile(app.Graph, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(c.Graph, mapping.OneToOne(c.Graph), Options{Machine: machine.Embedded(), Frames: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := build(), build()
	if a.Time != b.Time || a.InputStalls != b.InputStalls {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.PEs {
		if a.PEs[i] != b.PEs[i] {
			t.Fatalf("PE %d stats differ", i)
		}
	}
}

func TestSimulateRejectsUnassignedNode(t *testing.T) {
	g := simpleGainApp(geom.FInt(10))
	a := &mapping.Assignment{PEOf: map[*graph.Node]int{}, NumPEs: 0}
	if _, err := Simulate(g, a, Options{Machine: machine.Embedded()}); err == nil {
		t.Fatal("unassigned node accepted")
	}
}
