package frame

import "fmt"

// Kind identifies the element type carried by a window. It is a
// first-class property of a stream edge: sources declare the kind of
// the samples they produce, kernels declare the kinds they consume and
// emit, and the compiler inserts explicit conversion kernels where
// edges disagree (transform.InsertConversions). The zero value is F64
// so every pre-existing window literal keeps its meaning.
//
// Narrower kinds are what make the data plane vectorizable end to end:
// a megabyte Bayer frame travels as one byte per sample (in memory and
// on the cluster wire) instead of eight, and the row-batched kernel
// loops run over dense typed spans the compiler can unroll.
type Kind uint8

const (
	// F64 is the default element kind: IEEE-754 double, the semantic
	// reference arithmetic every other kind is diffed against.
	F64 Kind = iota
	// U8 is an unsigned byte sample (sensor planes, Bayer mosaics).
	U8
	// F32 is an IEEE-754 single sample.
	F32
	kindCount // sentinel for validation
)

// Bytes returns the storage width of one sample of this kind.
func (k Kind) Bytes() int {
	switch k {
	case U8:
		return 1
	case F32:
		return 4
	default:
		return 8
	}
}

// Valid reports whether k names a defined element kind.
func (k Kind) Valid() bool { return k < kindCount }

func (k Kind) String() string {
	switch k {
	case F64:
		return "f64"
	case U8:
		return "u8"
	case F32:
		return "f32"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind resolves the names used in descriptors and tool flags.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "f64", "float64":
		return F64, nil
	case "u8", "uint8", "byte":
		return U8, nil
	case "f32", "float32":
		return F32, nil
	}
	return F64, fmt.Errorf("frame: unknown element kind %q", s)
}

// Widens reports whether a conversion from k to to is exact for every
// representable value (u8 → f32/f64, f32 → f64). Non-widening
// conversions round (to f32) or clamp-and-round (to u8) and must be
// requested explicitly.
func (k Kind) Widens(to Kind) bool {
	if k == to {
		return true
	}
	switch k {
	case U8:
		return to == F32 || to == F64
	case F32:
		return to == F64
	}
	return false
}
