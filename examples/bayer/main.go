// Bayer reproduces benchmark 1/1F of the paper's Figure 13: real-time
// RGGB demosaicing. It demonstrates kernels with multiple outputs (the
// R, G, and B planes leave on separate streams) and shows the rate axis
// of the evaluation: at the slow rate the kernel fits one PE, at the
// fast rate the compiler replicates it behind column-striped buffers.
package main

import (
	"fmt"
	"log"

	"blockpar"
)

const (
	width, height = 64, 48
)

func build(samplesPerSec int64) *blockpar.Graph {
	g := blockpar.NewApp(fmt.Sprintf("bayer-%dsps", samplesPerSec))
	in := g.AddInput("Input", blockpar.Sz(width, height), blockpar.Sz(1, 1),
		blockpar.F(samplesPerSec, width*height))
	demosaic := g.Add(blockpar.BayerDemosaic("Demosaic"))
	outR := g.AddOutput("R", blockpar.Sz(2, 2))
	outG := g.AddOutput("G", blockpar.Sz(2, 2))
	outB := g.AddOutput("B", blockpar.Sz(2, 2))
	g.Connect(in, "out", demosaic, "in")
	g.Connect(demosaic, "r", outR, "in")
	g.Connect(demosaic, "g", outG, "in")
	g.Connect(demosaic, "b", outB, "in")
	return g
}

func main() {
	for _, rate := range []int64{400_000, 1_500_000} {
		g := build(rate)
		cfg := blockpar.DefaultConfig()
		compiled, err := blockpar.Compile(g, cfg)
		if err != nil {
			log.Fatal(err)
		}

		// Functional check of the red plane against the golden
		// demosaic.
		res, err := blockpar.Run(compiled.Graph, blockpar.RunOptions{
			Frames:  1,
			Sources: map[string]blockpar.Generator{"Input": blockpar.BayerMosaic},
		})
		if err != nil {
			log.Fatal(err)
		}
		goldR, _, _ := blockpar.GoldenDemosaic(blockpar.BayerMosaic(0, width, height))
		quads := res.DataWindows("R")
		nX := (width-4)/2 + 1
		for qi, q := range quads {
			qx, qy := qi%nX, qi/nX
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					if q.At(dx, dy) != goldR.At(qx*2+dx, qy*2+dy) {
						log.Fatalf("rate %d: red plane mismatch at quad %d", rate, qi)
					}
				}
			}
		}

		assign, err := blockpar.MapGreedy(compiled.Graph, compiled.Analysis, cfg.Machine)
		if err != nil {
			log.Fatal(err)
		}
		sr, err := blockpar.Simulate(compiled.Graph, assign, blockpar.SimOptions{
			Machine: cfg.Machine, Frames: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s demosaic x%d, %2d PEs, util %5.1f%%, real-time %v, red plane matches golden\n",
			g.Name, compiled.Report.Degrees["Demosaic"], assign.NumPEs,
			100*sr.MeanUtilization(), sr.RealTimeMet())
	}
}
