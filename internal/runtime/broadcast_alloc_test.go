package runtime

import (
	"testing"

	"blockpar/internal/conn"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
)

// stubEngine captures deliveries into a fixed array so the send path
// under test is the only code that could touch the heap.
type stubEngine struct {
	items [8]graph.Item
	n     int
}

func (s *stubEngine) start() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}
func (s *stubEngine) deliver(e *graph.Edge, it graph.Item) {
	s.items[s.n] = it
	s.n++
}
func (s *stubEngine) recv(n *graph.Node) (inMsg, bool) { return inMsg{}, false }
func (s *stubEngine) stopNotify()                      {}

// TestBroadcastSendAllocFree is the zero-copy gate on broadcast
// fan-out: delivering one data item to every consumer of a declared
// broadcast connection must add pool references, not copies — zero
// heap allocations per send, and every consumer must observe the same
// backing storage.
func TestBroadcastSendAllocFree(t *testing.T) {
	prev := frame.SetZeroCopy(true)
	defer frame.SetZeroCopy(prev)

	g := graph.New("bcast-alloc")
	in := g.AddInput("Input", geom.Sz(8, 4), geom.Sz(1, 1), geom.FInt(10))
	tos := make([]*graph.Port, 3)
	for b := 0; b < 3; b++ {
		gain := g.Add(kernel.Gain("Gain"+string(rune('A'+b)), float64(b+1)))
		g.Connect(in, "out", gain, "in")
		tos[b] = gain.Input("in")
		out := g.AddOutput("out"+string(rune('A'+b)), geom.Sz(1, 1))
		g.Connect(gain, "out", out, "in")
	}
	g.AddConn("bcast", conn.Broadcast, in.Output("out"), tos)

	ex, err := newExecutor(g, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := &stubEngine{}
	ex.eng = eng
	port := in.Output("out")

	fire := func() {
		w := frame.PooledScalar(42)
		ex.send(port, graph.DataItem(w))
		if eng.n != 3 {
			t.Fatalf("delivered %d items, want 3", eng.n)
		}
		base := &eng.items[0].Win.Pix[0]
		for i := 0; i < eng.n; i++ {
			if &eng.items[i].Win.Pix[0] != base {
				t.Fatalf("consumer %d received a copy, not a shared reference", i)
			}
			eng.items[i].Win.Release()
		}
		eng.n = 0
	}
	fire() // warm-up: populate the pool bucket
	if avg := testing.AllocsPerRun(100, fire); avg != 0 {
		t.Errorf("broadcast send: %.1f allocs per fan-out, want 0", avg)
	}
}
