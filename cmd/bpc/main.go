// Command bpc is the block-parallel compiler driver: it builds one of
// the benchmark applications, runs the selected compilation stages
// (analysis, buffering, alignment, parallelization), and prints the
// resulting graph, analysis tables, or Graphviz DOT.
//
// Usage:
//
//	bpc -app SF -stage parallel -dot > sf.dot
//	bpc -app 5 -stage buffered
//	bpc -app 1F -analysis
//	bpc -app SF -plan 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"blockpar/internal/analysis"
	"blockpar/internal/apps"
	"blockpar/internal/core"
	"blockpar/internal/desc"
	"blockpar/internal/graph"
	"blockpar/internal/machine"
	"blockpar/internal/placement"
	"blockpar/internal/transform"
)

func main() {
	appID := flag.String("app", "5", "benchmark id: "+strings.Join(apps.IDs(), ", "))
	file := flag.String("file", "", "load the application from a JSON description instead of -app")
	stage := flag.String("stage", "parallel", "compilation stage: raw, buffered, parallel")
	align := flag.String("align", "trim", "alignment policy: trim, pad")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of a summary")
	encode := flag.Bool("encode", false, "emit the raw application as a JSON description and exit")
	showAnalysis := flag.Bool("analysis", false, "print the per-kernel analysis table")
	plan := flag.Int("plan", 0, "print the cross-worker placement plan for a fleet of N workers and exit")
	flag.Parse()

	if err := run(*appID, *file, *stage, *align, *dot, *encode, *showAnalysis, *plan); err != nil {
		fmt.Fprintln(os.Stderr, "bpc:", err)
		os.Exit(1)
	}
}

func run(appID, file, stage, align string, dot, encode, showAnalysis bool, plan int) error {
	var g *graph.Graph
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		g, err = desc.Parse(data)
		if err != nil {
			return err
		}
	} else {
		app, err := apps.ByID(appID)
		if err != nil {
			return err
		}
		g = app.Graph
	}
	if encode {
		data, err := desc.Encode(g)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	cfg := core.Config{Machine: machine.Embedded(), BufferStriping: true}
	switch align {
	case "trim":
		cfg.Align = transform.Trim
	case "pad":
		cfg.Align = transform.PadInputs
	default:
		return fmt.Errorf("unknown alignment policy %q", align)
	}
	switch stage {
	case "raw":
		// Leave the graph as the programmer wrote it.
	case "buffered":
		cfg.Parallelize = false
		if _, err := core.Compile(g, cfg); err != nil {
			return err
		}
	case "parallel":
		cfg.Parallelize = true
		c, err := core.Compile(g, cfg)
		if err != nil {
			return err
		}
		if !dot && !showAnalysis {
			fmt.Println("parallelization degrees:")
			for base, deg := range c.Report.Degrees {
				fmt.Printf("  %-24s %d\n", base, deg)
			}
			fmt.Println()
		}
	default:
		return fmt.Errorf("unknown stage %q", stage)
	}

	if plan > 0 {
		r, err := analysis.Analyze(g)
		if err != nil {
			return err
		}
		m := machine.Embedded()
		p, err := placement.PlanGraph(g, r, m, placement.EvenFleet(g, r, m, plan), 1)
		if err != nil {
			return err
		}
		fmt.Print(p.String())
		return nil
	}
	if dot {
		fmt.Print(g.Dot())
		return nil
	}
	if showAnalysis {
		r, err := analysis.Analyze(g)
		if err != nil {
			return err
		}
		m := machine.Embedded()
		fmt.Printf("%-36s %-10s %12s %10s %8s %8s\n",
			"kernel", "iter", "cycles/frame", "mem", "util", "degree")
		for _, n := range g.Nodes() {
			ni := r.NodeInfoOf(n)
			l := r.LoadOf(n, m)
			fmt.Printf("%-36s %4dx%-5d %12d %10d %7.2f%% %8d\n",
				n.Name(), ni.IterX, ni.IterY, ni.CyclesPerFrame,
				ni.MemoryWords, 100*l.Utilization, r.DegreeFor(n, m))
		}
		if r.HasProblems() {
			fmt.Println("\nproblems:")
			for _, p := range r.Problems {
				fmt.Println("  " + p.String())
			}
		}
		return nil
	}
	fmt.Println(g.Summary())
	return nil
}
