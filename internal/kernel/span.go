package kernel

import (
	"cmp"

	"blockpar/internal/frame"
)

// elemToF64 is embedded by behaviors whose arithmetic runs in float64
// and allocates float64 results regardless of the arriving element kind
// (scalar reductions, histogram counts, motion vectors): they accept
// any input kind — samples promote exactly through Window.At/Value —
// and their outputs carry f64.
type elemToF64 struct{}

// ElemAccepts implements graph.ElemTyped.
func (elemToF64) ElemAccepts(input string, k frame.Kind) bool { return true }

// ElemOut implements graph.ElemTyped.
func (elemToF64) ElemOut(output string, in frame.Kind) frame.Kind { return frame.F64 }

// typedRow returns window row y as its native element slice. The type
// parameter must match the window's kind; callers dispatch on w.Kind
// and instantiate accordingly.
func typedRow[T cmp.Ordered](w frame.Window, y int) []T {
	switch w.Kind {
	case frame.U8:
		return any(w.RowU8(y)).([]T)
	case frame.F32:
		return any(w.RowF32(y)).([]T)
	default:
		return any(w.Row(y)).([]T)
	}
}
