package kernel

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// Buffer builds the compiler-inserted 2-D circular buffer kernel
// (paper §III-B): it converts a scan-order stream of 1×1 samples
// covering a plan.DataW×plan.DataH region into the scan-order stream
// of plan-sized windows. The buffer emits its own end-of-line token
// after the last window of each output row and forwards the
// end-of-frame token after the frame completes, so downstream token
// structure always matches downstream data structure.
//
// Memory is sized to double-buffer the larger of input and output
// (plan.MemoryWords), which is what makes buffers the memory-bound
// kernels that the buffer-splitting transformation targets (§IV-C).
func Buffer(name string, plan BufferPlan) *graph.Node {
	if plan.WinW < 1 || plan.WinH < 1 || plan.StepX < 1 || plan.StepY < 1 {
		panic(fmt.Sprintf("kernel: invalid buffer plan %+v", plan))
	}
	n := graph.NewNode(name, graph.KindBuffer)
	n.CreateInput("in", geom.Sz(1, 1), geom.St(1, 1), geom.Off(0, 0))
	n.CreateOutput("out", geom.Sz(plan.WinW, plan.WinH), geom.St(plan.StepX, plan.StepY))
	n.RegisterMethod("buffer", fsmPerItem, plan.MemoryWords())
	n.RegisterMethodInput("buffer", "in")
	n.RegisterMethodOutput("buffer", "out")
	n.Attrs["label"] = plan.Label()
	n.Behavior = &bufferBehavior{plan: plan}
	return n
}

type bufferBehavior struct {
	plan BufferPlan
	// rows is a ring of the last WinH rows of samples.
	rows [][]float64
	x, y int
}

func (b *bufferBehavior) Clone() graph.Behavior { return &bufferBehavior{plan: b.plan} }

// Plan exposes the buffer parameterization to the transformer and the
// simulator.
func (b *bufferBehavior) Plan() BufferPlan { return b.plan }

func (b *bufferBehavior) reset() {
	b.x, b.y = 0, 0
	for i := range b.rows {
		for j := range b.rows[i] {
			b.rows[i][j] = 0
		}
	}
}

func (b *bufferBehavior) Run(ctx graph.RunContext) error {
	p := b.plan
	if b.rows == nil {
		b.rows = make([][]float64, p.WinH)
		for i := range b.rows {
			b.rows[i] = make([]float64, p.DataW)
		}
	}
	for {
		it, ok := ctx.Recv("in")
		if !ok {
			return nil
		}
		if it.IsToken {
			switch it.Tok.Kind {
			case token.EndOfLine:
				// Input row boundary: consumed silently; the buffer
				// regenerates EOL at its own output-row boundaries.
				if b.x != p.DataW {
					return fmt.Errorf("kernel: buffer %q got EOL after %d of %d samples",
						ctx.Node().Name(), b.x, p.DataW)
				}
				b.x = 0
				b.y++
			case token.EndOfFrame:
				if b.y != p.DataH {
					return fmt.Errorf("kernel: buffer %q got EOF after %d of %d rows",
						ctx.Node().Name(), b.y, p.DataH)
				}
				b.reset()
				ctx.Send("out", graph.TokenItem(it.Tok))
			default:
				// Custom tokens pass through in order.
				ctx.Send("out", it)
			}
			continue
		}
		if it.Win.W != 1 || it.Win.H != 1 {
			return fmt.Errorf("kernel: buffer %q expects 1x1 samples, got %dx%d",
				ctx.Node().Name(), it.Win.W, it.Win.H)
		}
		if b.x >= p.DataW || b.y >= p.DataH {
			return fmt.Errorf("kernel: buffer %q overflow at (%d,%d) for %dx%d region",
				ctx.Node().Name(), b.x, b.y, p.DataW, p.DataH)
		}
		b.rows[b.y%p.WinH][b.x] = it.Win.Value()
		it.Win.Release()
		emit, wx, wy, rowEnd := p.OnSample(b.x, b.y)
		if emit {
			win := frame.Alloc(p.WinW, p.WinH)
			for dy := 0; dy < p.WinH; dy++ {
				src := b.rows[(wy+dy)%p.WinH]
				copy(win.Pix[dy*p.WinW:(dy+1)*p.WinW], src[wx:wx+p.WinW])
			}
			ctx.Send("out", graph.DataItem(win))
			if rowEnd {
				ctx.Send("out", graph.TokenItem(token.EOL(int64(wy/p.StepY))))
			}
		}
		b.x++
	}
}

// BufferPlanOf returns the plan of a buffer node built by Buffer, for
// transform and simulator introspection.
func BufferPlanOf(n *graph.Node) (BufferPlan, bool) {
	b, ok := n.Behavior.(*bufferBehavior)
	if !ok {
		return BufferPlan{}, false
	}
	return b.plan, true
}
