package mapping

import (
	"testing"

	"blockpar/internal/machine"
)

// TestEnergyOrdering ties the paper's energy argument together: greedy
// multiplexing beats 1:1 (less idle leakage and less inter-PE
// traffic), and annealed placement beats identity placement under the
// same assignment (fewer word-hops).
func TestEnergyOrdering(t *testing.T) {
	g, r := compiledImageApp(t)
	m := machine.Embedded()
	em := DefaultEnergy()

	one := OneToOne(g)
	gm, err := Greedy(g, r, m)
	if err != nil {
		t.Fatal(err)
	}

	eOne := EnergyPerFrame(g, r, m, one, nil, em)
	eGM := EnergyPerFrame(g, r, m, gm, nil, em)
	if eGM >= eOne {
		t.Errorf("greedy energy %.0f not below 1:1's %.0f", eGM, eOne)
	}

	ident := identityPlacement(gm.NumPEs)
	placed := Anneal(g, gm, 42)
	eIdent := EnergyPerFrame(g, r, m, gm, ident, em)
	ePlaced := EnergyPerFrame(g, r, m, gm, placed, em)
	if ePlaced > eIdent {
		t.Errorf("annealed placement energy %.0f above identity's %.0f", ePlaced, eIdent)
	}
	t.Logf("energy/frame: 1:1 %.0f, greedy %.0f, greedy+anneal %.0f (arb. units)",
		eOne, eGM, ePlaced)
}

func identityPlacement(numPEs int) *Placement {
	side := 1
	for side*side < numPEs {
		side++
	}
	p := &Placement{GridW: side, GridH: side, At: make([]int, numPEs)}
	for i := range p.At {
		p.At[i] = i
	}
	return p
}

func TestEnergyComponentsPositive(t *testing.T) {
	g, r := compiledImageApp(t)
	m := machine.Embedded()
	gm, err := Greedy(g, r, m)
	if err != nil {
		t.Fatal(err)
	}
	// Zeroing a component must lower the estimate: each term
	// contributes.
	full := EnergyPerFrame(g, r, m, gm, nil, DefaultEnergy())
	noComm := EnergyPerFrame(g, r, m, gm, nil, EnergyModel{PJPerCycle: 1, PJPerIdleCycle: 0.1})
	noIdle := EnergyPerFrame(g, r, m, gm, nil, EnergyModel{PJPerCycle: 1, PJPerWordHop: 4})
	if !(noComm < full && noIdle < full) {
		t.Errorf("components missing: full %.0f, noComm %.0f, noIdle %.0f", full, noComm, noIdle)
	}
}
