package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"blockpar/internal/geom"
	"blockpar/internal/machine"
	"blockpar/internal/mapping"
)

func TestTraceRecordsFirings(t *testing.T) {
	g := simpleGainApp(geom.FInt(1000))
	res, err := Simulate(g, mapping.OneToOne(g), Options{
		Machine: machine.Embedded(), Frames: 1, TraceLimit: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Events) == 0 {
		t.Fatal("no trace recorded")
	}
	// 32 samples + 4 EOL + 1 EOF firings on the gain kernel.
	if got := len(res.Trace.Events); got != 37 {
		t.Errorf("trace events = %d, want 37", got)
	}
	// Events are in start order with positive durations on PE 0.
	prev := -1.0
	for i, ev := range res.Trace.Events {
		if ev.Start < prev {
			t.Fatalf("event %d out of order", i)
		}
		prev = ev.Start
		if ev.Duration <= 0 || ev.Node != "Gain" || ev.PE != 0 {
			t.Fatalf("bad event %+v", ev)
		}
	}
	if res.Trace.Dropped != 0 {
		t.Errorf("dropped = %d", res.Trace.Dropped)
	}
}

func TestTraceLimitDrops(t *testing.T) {
	g := simpleGainApp(geom.FInt(1000))
	res, err := Simulate(g, mapping.OneToOne(g), Options{
		Machine: machine.Embedded(), Frames: 1, TraceLimit: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Events) != 5 || res.Trace.Dropped != 32 {
		t.Errorf("events=%d dropped=%d, want 5, 32", len(res.Trace.Events), res.Trace.Dropped)
	}
}

func TestTraceCSVAndGanttAndTop(t *testing.T) {
	g := simpleGainApp(geom.FInt(1000))
	res, err := Simulate(g, mapping.OneToOne(g), Options{
		Machine: machine.Embedded(), Frames: 1, TraceLimit: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.Trace.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	csv := sb.String()
	if !strings.HasPrefix(csv, "start_s,duration_s,pe,node,label\n") {
		t.Error("CSV header missing")
	}
	if !strings.Contains(csv, "Gain,runGain") {
		t.Errorf("CSV missing firing rows:\n%s", csv[:200])
	}

	gantt := res.Trace.Gantt(1, res.Time, 20)
	if !strings.HasPrefix(gantt, "PE0") || !strings.Contains(gantt, "|") {
		t.Errorf("Gantt malformed:\n%s", gantt)
	}

	top := res.Trace.TopNodes(3)
	if len(top) != 1 || top[0].Node != "Gain" || top[0].Busy <= 0 {
		t.Errorf("TopNodes = %+v", top)
	}
}

func TestTraceJSONIsValidTraceEventFormat(t *testing.T) {
	g := simpleGainApp(geom.FInt(1000))
	res, err := Simulate(g, mapping.OneToOne(g), Options{
		Machine: machine.Embedded(), Frames: 1, TraceLimit: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.Trace.WriteTraceJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData struct {
			DroppedEvents int64 `json:"droppedEvents"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, sb.String())
	}
	var slices, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
			if ev.Name != "Gain" || ev.Dur <= 0 || ev.Ts < 0 || ev.Tid != 0 {
				t.Errorf("bad slice event %+v", ev)
			}
			if _, ok := ev.Args["label"]; !ok {
				t.Errorf("slice event missing label arg: %+v", ev)
			}
		case "M":
			meta++
			if ev.Name != "thread_name" {
				t.Errorf("bad metadata event %+v", ev)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if slices != len(res.Trace.Events) {
		t.Errorf("JSON has %d slices, trace has %d events", slices, len(res.Trace.Events))
	}
	if meta != 1 {
		t.Errorf("thread metadata events = %d, want 1 (single PE)", meta)
	}
	if doc.OtherData.DroppedEvents != res.Trace.Dropped {
		t.Errorf("droppedEvents = %d, want %d", doc.OtherData.DroppedEvents, res.Trace.Dropped)
	}
	// Timestamps are microseconds: the first firing's ts must match the
	// trace's simulated-seconds start scaled by 1e6.
	if len(res.Trace.Events) > 0 && slices > 0 {
		wantTs := res.Trace.Events[0].Start * 1e6
		for _, ev := range doc.TraceEvents {
			if ev.Ph != "X" {
				continue
			}
			if ev.Ts != wantTs {
				t.Errorf("first slice ts = %g, want %g", ev.Ts, wantTs)
			}
			break
		}
	}
}

func TestWarmupExcludesFirstFrame(t *testing.T) {
	g := simpleGainApp(geom.FInt(1000))
	full, err := Simulate(g, mapping.OneToOne(g), Options{Machine: machine.Embedded(), Frames: 3})
	if err != nil {
		t.Fatal(err)
	}
	g2 := simpleGainApp(geom.FInt(1000))
	warm, err := Simulate(g2, mapping.OneToOne(g2), Options{
		Machine: machine.Embedded(), Frames: 3, WarmupFrames: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.MeasuredFrom <= 0 {
		t.Fatal("warmup did not record a measurement start")
	}
	// Steady-state firings cover ~2 of 3 frames.
	fullF := full.Nodes["Gain"].Firings
	warmF := warm.Nodes["Gain"].Firings
	if warmF >= fullF || warmF < fullF/2 {
		t.Errorf("warm firings = %d vs full %d; expected about two thirds", warmF, fullF)
	}
	// Utilizations should be in the same ballpark (steady pipeline).
	uf, uw := full.MeanUtilization(), warm.MeanUtilization()
	if uw <= 0 || uw > 3*uf {
		t.Errorf("warm utilization %v vs full %v", uw, uf)
	}
}

func TestWarmupMustBeBelowFrames(t *testing.T) {
	g := simpleGainApp(geom.FInt(1000))
	if _, err := Simulate(g, mapping.OneToOne(g), Options{
		Machine: machine.Embedded(), Frames: 2, WarmupFrames: 2,
	}); err == nil {
		t.Fatal("warmup == frames accepted")
	}
}
