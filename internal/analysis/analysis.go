// Package analysis implements the paper's data-flow analyses (§III):
// propagation of the application inputs' sizes and rates through the
// graph to compute per-kernel iteration sizes and rates, per-port data
// regions and item grids, and insets relative to the application
// inputs. The results drive the automatic transformations (buffer
// insertion, trimming/padding, parallelization) and the load model used
// by mapping and simulation.
//
// The analysis works in logical sample space. Every stream edge carries,
// per frame, a rectangular Region of samples, chunked into an item grid
// (Items of ItemSize each), at a frame Rate, displaced by Inset from
// the application input's origin. A windowed consumer reading a raw
// 1×1-sample stream slides its window over the Region (and the analysis
// flags that edge as needing a buffer); an item-aligned consumer fires
// once per item.
package analysis

import (
	"fmt"

	"blockpar/internal/geom"
	"blockpar/internal/graph"
)

// PortInfo describes the stream produced by an output port or arriving
// at an input port.
type PortInfo struct {
	// Region is the logical sample extent per frame.
	Region geom.Size
	// Items is the item grid per frame (columns × rows of items).
	Items geom.Size
	// ItemSize is the shape of each item.
	ItemSize geom.Size
	// Inset displaces the region's origin from the application input's
	// origin (paper §III-C).
	Inset geom.Offset
	// Rate is the frame rate in Hz.
	Rate geom.Frac
	// Flat marks streams whose two-dimensional grid structure was lost
	// by round-robin distribution (SplitRR/JoinRR flatten the item
	// grid to a row). Totals remain exact; shape and inset comparisons
	// are skipped for flat streams.
	Flat bool
}

// ItemsPerFrame returns the total items per frame.
func (p PortInfo) ItemsPerFrame() int64 {
	return int64(p.Items.W) * int64(p.Items.H)
}

// WordsPerFrame returns the total words per frame.
func (p PortInfo) WordsPerFrame() int64 {
	return p.ItemsPerFrame() * int64(p.ItemSize.Area())
}

func (p PortInfo) String() string {
	return fmt.Sprintf("region%v items%v of %v inset%v @%vHz",
		p.Region, p.Items, p.ItemSize, p.Inset, p.Rate)
}

// MethodInfo describes one method's computed execution requirements.
type MethodInfo struct {
	// IterX, IterY is the iteration grid per frame (1×1 for
	// token-triggered methods firing once per frame).
	IterX, IterY int64
	// Rate is the frame rate driving the method.
	Rate geom.Frac
	// ReadWords and WriteWords are per-frame channel word counts.
	ReadWords, WriteWords int64
}

// Invocations returns iterations per frame.
func (m MethodInfo) Invocations() int64 { return m.IterX * m.IterY }

// NodeInfo aggregates a node's requirements (paper §III-A: "the
// iteration size and rate at each kernel").
type NodeInfo struct {
	// IterX, IterY is the data-method iteration grid (the paper's
	// iteration size), zero if the node has no data methods.
	IterX, IterY int64
	// Rate is the node's driving frame rate.
	Rate    geom.Frac
	Methods map[string]MethodInfo
	// CyclesPerFrame is Σ method invocations × cycles.
	CyclesPerFrame int64
	// ReadWordsPerFrame and WriteWordsPerFrame count channel traffic.
	ReadWordsPerFrame  int64
	WriteWordsPerFrame int64
	// MemoryWords is the node's private state plus port buffers.
	MemoryWords int64
}

// ProblemKind classifies issues the transformations must fix.
type ProblemKind int

const (
	// NeedsBuffer marks an edge whose consumer slides a window over a
	// raw sample stream: a buffer kernel must be inserted (§III-B).
	NeedsBuffer ProblemKind = iota
	// Misaligned marks a method whose data inputs disagree in region
	// or inset: an inset or pad kernel must be inserted (§III-C).
	Misaligned
	// RateMismatch marks a method whose data inputs arrive at
	// different frame rates.
	RateMismatch
	// Incompatible marks an edge whose chunking cannot feed the
	// consumer at all.
	Incompatible
)

func (k ProblemKind) String() string {
	switch k {
	case NeedsBuffer:
		return "needs-buffer"
	case Misaligned:
		return "misaligned"
	case RateMismatch:
		return "rate-mismatch"
	case Incompatible:
		return "incompatible"
	default:
		return fmt.Sprintf("ProblemKind(%d)", int(k))
	}
}

// Problem is one issue found during propagation.
type Problem struct {
	Kind   ProblemKind
	Node   *graph.Node
	Method string
	// Edge is set for NeedsBuffer/Incompatible.
	Edge *graph.Edge
	Note string
}

func (p Problem) String() string {
	s := fmt.Sprintf("%s at %s", p.Kind, p.Node.Name())
	if p.Method != "" {
		s += "." + p.Method
	}
	if p.Edge != nil {
		s += " on " + p.Edge.String()
	}
	if p.Note != "" {
		s += ": " + p.Note
	}
	return s
}

// Result is the full analysis output.
type Result struct {
	// Out maps every output port to what it produces; In maps every
	// input port to what arrives on it.
	Out      map[*graph.Port]PortInfo
	In       map[*graph.Port]PortInfo
	Nodes    map[*graph.Node]NodeInfo
	Problems []Problem
}

// NodeInfoOf returns the node's info (zero value if absent).
func (r *Result) NodeInfoOf(n *graph.Node) NodeInfo { return r.Nodes[n] }

// HasProblems reports whether any problems were found.
func (r *Result) HasProblems() bool { return len(r.Problems) > 0 }

// ProblemsOfKind filters problems by kind.
func (r *Result) ProblemsOfKind(k ProblemKind) []Problem {
	var out []Problem
	for _, p := range r.Problems {
		if p.Kind == k {
			out = append(out, p)
		}
	}
	return out
}

// Analyze propagates sizes, rates, and insets through the graph. The
// graph must validate. Feedback loops are handled with a second
// propagation pass once the loop-closing edges have produced info
// (§III-D "using a work-list to traverse the graph").
func Analyze(g *graph.Graph) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	order, err := g.Topological()
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}

	r := &Result{
		Out:   make(map[*graph.Port]PortInfo),
		In:    make(map[*graph.Port]PortInfo),
		Nodes: make(map[*graph.Node]NodeInfo),
	}
	a := &analyzer{g: g, r: r}

	passes := 1
	for _, n := range g.Nodes() {
		if n.Kind == graph.KindFeedback {
			passes = 2
			break
		}
	}
	for pass := 0; pass < passes; pass++ {
		r.Problems = r.Problems[:0]
		for _, n := range order {
			a.visit(n, pass)
		}
	}
	return r, nil
}

type analyzer struct {
	g *graph.Graph
	r *Result
}

func (a *analyzer) problem(p Problem) {
	a.r.Problems = append(a.r.Problems, p)
}

// arriving resolves what reaches each input port from its feeding edge.
func (a *analyzer) arriving(n *graph.Node) map[string]PortInfo {
	in := make(map[string]PortInfo)
	for _, p := range n.Inputs() {
		e := a.g.EdgeTo(p)
		if e == nil {
			continue
		}
		info, ok := a.r.Out[e.From]
		if !ok {
			continue // unresolved (feedback first pass)
		}
		in[p.Name] = info
		a.r.In[p] = info
	}
	return in
}

func (a *analyzer) visit(n *graph.Node, pass int) {
	switch n.Kind {
	case graph.KindInput:
		a.visitInput(n)
	case graph.KindOutput:
		a.visitOutput(n)
	case graph.KindBuffer:
		a.visitBuffer(n)
	case graph.KindSplit:
		a.visitSplit(n)
	case graph.KindJoin:
		a.visitJoin(n)
	case graph.KindReplicate:
		a.visitReplicate(n)
	case graph.KindInset:
		a.visitInset(n)
	case graph.KindPad:
		a.visitPad(n)
	case graph.KindFeedback:
		a.visitFeedback(n, pass)
	default:
		a.visitKernel(n)
	}
}

func (a *analyzer) visitInput(n *graph.Node) {
	out := n.Output("out")
	chunk := out.Size
	info := PortInfo{
		Region:   n.FrameSize,
		Items:    geom.Sz(n.FrameSize.W/chunk.W, n.FrameSize.H/chunk.H),
		ItemSize: chunk,
		Rate:     n.Rate,
	}
	a.r.Out[out] = info
	items := info.ItemsPerFrame()
	a.r.Nodes[n] = NodeInfo{
		IterX: int64(info.Items.W), IterY: int64(info.Items.H),
		Rate:               n.Rate,
		Methods:            map[string]MethodInfo{},
		WriteWordsPerFrame: items * int64(chunk.Area()),
	}
}

func (a *analyzer) visitOutput(n *graph.Node) {
	in := a.arriving(n)
	info := in["in"]
	a.r.Nodes[n] = NodeInfo{
		IterX: int64(info.Items.W), IterY: int64(info.Items.H),
		Rate:              info.Rate,
		Methods:           map[string]MethodInfo{},
		ReadWordsPerFrame: info.WordsPerFrame(),
	}
}
