package graph

import (
	"fmt"

	"blockpar/internal/conn"
)

// Conn is a declared generalized connection (broadcast or windowed
// share): one producer output fanning out to several consumer inputs as
// a named group. The record is front-end metadata layered over the
// ordinary stream edges — the data plane is the edges themselves — and
// exists so the compiler can lower a share group onto one shared ring,
// reports can render the families distinctly, and the descriptor codec
// can round-trip the declaration. Scatter/gather connections need no
// record: they are first-class kernels (KindSplit/KindJoin) carrying
// their schedule in the behavior.
type Conn struct {
	Name   string
	Family conn.Family
	From   *Port
	To     []*Port
}

// AddConn registers a declared connection group. The producer and every
// consumer must already be connected by stream edges (AddConn after
// Connect); consumers must be distinct.
func (g *Graph) AddConn(name string, family conn.Family, from *Port, to []*Port) *Conn {
	if family != conn.Broadcast && family != conn.Share {
		panic(fmt.Sprintf("graph: connection %q: family %v is not a declared-group family", name, family))
	}
	if from == nil || from.Dir != Out {
		panic(fmt.Sprintf("graph: connection %q needs a producer output port", name))
	}
	if len(to) < 2 {
		panic(fmt.Sprintf("graph: connection %q needs at least two consumers", name))
	}
	if g.nodesByName[from.node.Name()] != from.node {
		panic(fmt.Sprintf("graph: connection %q: producer %s not in graph", name, from))
	}
	seen := make(map[*Port]bool, len(to))
	for _, p := range to {
		if p == nil || p.Dir != In {
			panic(fmt.Sprintf("graph: connection %q needs consumer input ports", name))
		}
		if seen[p] {
			panic(fmt.Sprintf("graph: connection %q lists consumer %s twice", name, p))
		}
		seen[p] = true
		e := g.EdgeTo(p)
		if e == nil || e.From != from {
			panic(fmt.Sprintf("graph: connection %q: consumer %s is not fed by %s", name, p, from))
		}
	}
	for _, c := range g.conns {
		if c.Name == name {
			panic(fmt.Sprintf("graph: duplicate connection name %q", name))
		}
	}
	c := &Conn{Name: name, Family: family, From: from, To: append([]*Port(nil), to...)}
	g.conns = append(g.conns, c)
	return c
}

// Conns returns the declared connection groups in insertion order.
func (g *Graph) Conns() []*Conn { return g.conns }

// ConnOfEdge returns the declared connection an edge belongs to, or nil.
func (g *Graph) ConnOfEdge(e *Edge) *Conn {
	for _, c := range g.conns {
		if c.From != e.From {
			continue
		}
		for _, p := range c.To {
			if p == e.To {
				return c
			}
		}
	}
	return nil
}

// RemoveConn drops a declared connection record (used by transforms
// that lower the group onto runtime primitives).
func (g *Graph) RemoveConn(c *Conn) {
	conns := g.conns[:0]
	for _, o := range g.conns {
		if o != c {
			conns = append(conns, o)
		}
	}
	g.conns = conns
}

// pruneConns drops connection records touching a removed node and any
// group left with fewer than two consumers.
func (g *Graph) pruneConns(n *Node) {
	conns := g.conns[:0]
	for _, c := range g.conns {
		if c.From.node == n {
			continue
		}
		to := c.To[:0]
		for _, p := range c.To {
			if p.node != n {
				to = append(to, p)
			}
		}
		c.To = to
		if len(c.To) >= 2 {
			conns = append(conns, c)
		}
	}
	g.conns = conns
}

// cloneConns remaps the declared connections onto a cloned graph.
func (g *Graph) cloneConns(c *Graph) {
	for _, cc := range g.conns {
		from := c.Node(cc.From.node.Name()).Output(cc.From.Name)
		to := make([]*Port, len(cc.To))
		for i, p := range cc.To {
			to[i] = c.Node(p.node.Name()).Input(p.Name)
		}
		c.conns = append(c.conns, &Conn{Name: cc.Name, Family: cc.Family, From: from, To: to})
	}
}
