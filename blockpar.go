// Package blockpar is a block-parallel programming system for
// real-time embedded streaming applications, reproducing Black-Schaffer
// & Dally, "Block-Parallel Programming for Real-time Embedded
// Applications" (ICPP 2010).
//
// Applications are graphs of computation kernels connected by data
// stream channels carrying two-dimensional data in scan-line order.
// Kernel inputs and outputs are parameterized by window size, step, and
// offset; kernels may have multiple methods triggered by data or by
// in-band control tokens (end-of-line, end-of-frame, custom); inputs
// carry hard real-time rates. The compiler analyzes the graph
// (iteration sizes and rates, insets), then automatically inserts
// buffers, aligns mismatched halos by trimming or padding, and
// parallelizes kernels with split/join/replicate kernels to meet the
// input rate on a target many-core machine — respecting data-dependency
// edges that bound the available parallelism.
//
// Two execution engines are provided: a goroutine-per-kernel functional
// runtime (Run) that executes the graph with real data, and a
// deterministic discrete-event timing simulator (Simulate) that
// verifies the mapped application meets its real-time constraints and
// reports per-PE utilization.
//
// A minimal end-to-end use:
//
//	app := blockpar.NewApp("edges")
//	in := app.AddInput("Input", blockpar.Sz(64, 48), blockpar.Sz(1, 1), blockpar.FInt(30))
//	conv := app.Add(blockpar.Convolution("5x5 Conv", 5))
//	coeff := app.AddInput("Coeff", blockpar.Sz(5, 5), blockpar.Sz(5, 5), blockpar.FInt(30))
//	out := app.AddOutput("Output", blockpar.Sz(1, 1))
//	app.Connect(in, "out", conv, "in")
//	app.Connect(coeff, "out", conv, "coeff")
//	app.Connect(conv, "out", out, "in")
//
//	compiled, err := blockpar.Compile(app, blockpar.DefaultConfig())
//	// ... run functionally or simulate; see examples/.
package blockpar

import (
	"blockpar/internal/analysis"
	"blockpar/internal/core"
	"blockpar/internal/desc"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/machine"
	"blockpar/internal/mapping"
	"blockpar/internal/runtime"
	"blockpar/internal/sim"
	"blockpar/internal/token"
	"blockpar/internal/transform"
)

// Graph model.
type (
	// Graph is a block-parallel application description.
	Graph = graph.Graph
	// Node is a kernel instance in the graph.
	Node = graph.Node
	// Port is a parameterized kernel input or output.
	Port = graph.Port
	// Method is a kernel computation method.
	Method = graph.Method
	// NodeKind classifies nodes (kernel, buffer, split, ...).
	NodeKind = graph.NodeKind
	// Behavior is a kernel's functional implementation.
	Behavior = graph.Behavior
	// ExecContext is passed to Invoker behaviors per method firing.
	ExecContext = graph.ExecContext
	// Item is one stream element (data window or control token).
	Item = graph.Item
)

// Node kinds.
const (
	KindKernel    = graph.KindKernel
	KindInput     = graph.KindInput
	KindOutput    = graph.KindOutput
	KindBuffer    = graph.KindBuffer
	KindSplit     = graph.KindSplit
	KindJoin      = graph.KindJoin
	KindReplicate = graph.KindReplicate
	KindInset     = graph.KindInset
	KindPad       = graph.KindPad
	KindFeedback  = graph.KindFeedback
)

// Geometry and rates.
type (
	// Size is a 2-D extent in samples.
	Size = geom.Size
	// Step is the per-iteration window advance.
	Step = geom.Step
	// Offset is an exact (possibly fractional) 2-D displacement.
	Offset = geom.Offset
	// Frac is an exact rational, used for offsets and rates.
	Frac = geom.Frac
)

// Sz builds a Size; St a Step; Off an integer Offset; F and FInt exact
// rationals (rates are frames per second: use F(samples, frameArea)
// for sample-rate-driven inputs).
var (
	Sz   = geom.Sz
	St   = geom.St
	Off  = geom.Off
	F    = geom.F
	FInt = geom.FInt
)

// Tokens.
type (
	// Token is an in-band control token.
	Token = token.Token
	// TokenKind classifies tokens.
	TokenKind = token.Kind
)

// Token kinds.
const (
	TokenNone       = token.None
	TokenEndOfLine  = token.EndOfLine
	TokenEndOfFrame = token.EndOfFrame
	TokenCustom     = token.Custom
)

// Frames and windows.
type (
	// Window is a dense 2-D block of samples, the unit a channel moves.
	Window = frame.Window
	// Generator produces deterministic input frames.
	Generator = frame.Generator
)

// NewApp creates an empty application graph.
func NewApp(name string) *Graph { return graph.New(name) }

// NewKernel creates a bare kernel node for custom kernels: declare its
// ports with CreateInput/CreateOutput, methods with RegisterMethod and
// the trigger/output registrations, and attach a Behavior.
func NewKernel(name string) *Node { return graph.NewNode(name, graph.KindKernel) }

// Machine model.
type (
	// Machine describes the target many-core processor.
	Machine = machine.Machine
	// PE describes one processing element.
	PE = machine.PE
)

// Machine presets.
var (
	// DefaultMachine is a 200 MHz, 4K-word reference PE array.
	DefaultMachine = machine.Default
	// EmbeddedMachine is the 20 MHz, 768-word PE array the paper-style
	// experiments run on.
	EmbeddedMachine = machine.Embedded
)

// Compilation.
type (
	// Config selects the compilation pipeline's options.
	Config = core.Config
	// Compiled is a compiled application.
	Compiled = core.Compiled
	// AlignPolicy picks trimming vs padding for halo misalignment.
	AlignPolicy = transform.AlignPolicy
	// Analysis is the data-flow analysis result.
	Analysis = analysis.Result
)

// Alignment policies.
const (
	// AlignTrim discards the excess border of the larger streams.
	AlignTrim = transform.Trim
	// AlignPad zero-pads the smaller kernels' inputs instead.
	AlignPad = transform.PadInputs
)

// DefaultConfig compiles like the paper: trim alignment, striped
// buffers, full parallelization on the embedded machine.
func DefaultConfig() Config { return core.DefaultConfig() }

// Compile runs analysis, buffering, alignment, and parallelization on
// the application graph (mutating it in place).
func Compile(g *Graph, cfg Config) (*Compiled, error) { return core.Compile(g, cfg) }

// Analyze runs only the data-flow analysis (§III).
func Analyze(g *Graph) (*Analysis, error) { return analysis.Analyze(g) }

// Functional execution.
type (
	// RunOptions configures a functional run.
	RunOptions = runtime.Options
	// RunResult holds the streams every application output received.
	RunResult = runtime.Result
)

// Run executes the graph functionally: one goroutine per kernel,
// channels as stream FIFOs, control tokens in-band.
func Run(g *Graph, opts RunOptions) (*RunResult, error) { return runtime.Run(g, opts) }

// ExecutorKind selects the functional runtime's execution engine
// (RunOptions.Executor).
type ExecutorKind = runtime.ExecutorKind

// Executor kinds: a goroutine per kernel (the default) or a fixed
// worker pool running ready kernel firings to completion.
const (
	ExecGoroutines = runtime.ExecGoroutines
	ExecWorkers    = runtime.ExecWorkers
)

// PoolStats is a snapshot of the frame arena's counters: allocations
// served, pool hits, windows live, and bytes parked in the pool.
type PoolStats = frame.PoolStats

// Zero-copy data-plane controls: SetZeroCopy toggles pooled,
// view-based window storage (on by default); PoolUsage snapshots the
// arena counters; SetPoison enables use-after-release NaN poisoning
// for debugging kernel ownership bugs.
var (
	SetZeroCopy = frame.SetZeroCopy
	PoolUsage   = frame.Stats
	SetPoison   = frame.SetPoison
)

// Mapping and timing simulation.
type (
	// Assignment maps kernels to processing elements.
	Assignment = mapping.Assignment
	// Placement positions PEs on a 2-D grid.
	Placement = mapping.Placement
	// SimOptions configures a timing simulation.
	SimOptions = sim.Options
	// SimResult reports makespan, throughput, stalls, and per-PE
	// utilization split into run/read/write time.
	SimResult = sim.Result
)

// MapOneToOne assigns every kernel its own PE (Figure 12(a)).
func MapOneToOne(g *Graph) *Assignment { return mapping.OneToOne(g) }

// MapGreedy time-multiplexes neighboring low-utilization kernels onto
// shared PEs (§V, Figure 12(b)).
func MapGreedy(g *Graph, r *Analysis, m Machine) (*Assignment, error) {
	return mapping.Greedy(g, r, m)
}

// Place runs the simulated-annealing grid placement.
func Place(g *Graph, a *Assignment, seed uint64) *Placement {
	return mapping.Anneal(g, a, seed)
}

// Simulate runs the deterministic discrete-event timing simulation of
// the mapped application.
func Simulate(g *Graph, a *Assignment, opts SimOptions) (*SimResult, error) {
	return sim.Simulate(g, a, opts)
}

// ParseApp builds an application graph from its JSON description (the
// language's textual form; see internal/desc for the schema).
func ParseApp(data []byte) (*Graph, error) { return desc.Parse(data) }

// EncodeApp renders a programmer-level graph (library kernels only,
// before compilation) back into its JSON description.
func EncodeApp(g *Graph) ([]byte, error) { return desc.Encode(g) }

// MappingDot renders the graph with kernels clustered by their PE
// assignment, the visual form of the paper's Figure 12.
func MappingDot(g *Graph, a *Assignment) string { return mapping.Dot(g, a) }

// EnergyModel prices PE cycles, inter-PE word-hops, and idle capacity
// (§IV-D's energy discussion).
type EnergyModel = mapping.EnergyModel

// DefaultEnergy returns the reference energy model.
func DefaultEnergy() EnergyModel { return mapping.DefaultEnergy() }

// EnergyPerFrame estimates the energy one frame costs under an
// assignment and optional placement.
func EnergyPerFrame(g *Graph, r *Analysis, m Machine, a *Assignment, p *Placement, em EnergyModel) float64 {
	return mapping.EnergyPerFrame(g, r, m, a, p, em)
}
