// Package transform implements the paper's automatic program
// transformations: buffer insertion (§III-B), trimming/padding for
// alignment (§III-C), and parallelization with split/join/replicate
// kernels under data-dependency constraints (§IV), including the
// column-wise splitting of memory-bound buffers (§IV-C, Figure 10).
package transform

import (
	"fmt"

	"blockpar/internal/analysis"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
)

// InsertBuffers analyzes the graph and inserts a parameterized buffer
// kernel on every edge where a windowed consumer reads a raw sample
// stream (the NeedsBuffer problems), exactly as Figure 3 shows for the
// image-processing example. Buffers directly fed by application inputs
// are marked NoMultiplex (Figure 12: "the initial input buffers are not
// multiplexed because they may block the input").
func InsertBuffers(g *graph.Graph) error {
	r, err := analysis.Analyze(g)
	if err != nil {
		return err
	}
	probs := r.ProblemsOfKind(analysis.NeedsBuffer)
	for _, p := range probs {
		e := p.Edge
		if e == nil {
			return fmt.Errorf("transform: needs-buffer problem without edge at %s", p.Node.Name())
		}
		info := r.Out[e.From]
		consumer := e.To
		if info.ItemSize.W != 1 || info.ItemSize.H != 1 {
			return fmt.Errorf("transform: cannot buffer %s: items are %v, not raw samples",
				e, info.ItemSize)
		}
		plan := kernel.BufferPlan{
			DataW: info.Region.W, DataH: info.Region.H,
			WinW: consumer.Size.W, WinH: consumer.Size.H,
			StepX: consumer.Step.X, StepY: consumer.Step.Y,
		}
		name := uniqueName(g, fmt.Sprintf("Buffer(%s.%s)", consumer.Node().Name(), consumer.Name))
		buf := kernel.Buffer(name, plan)
		if e.From.Node().Kind == graph.KindInput {
			buf.NoMultiplex = true
		}
		g.Add(buf)
		from := e.From.Node()
		to := consumer.Node()
		g.Disconnect(e)
		g.Connect(from, e.From.Name, buf, "in")
		g.Connect(buf, "out", to, consumer.Name)
	}
	return nil
}

// RefreshBufferPlans re-derives every inserted buffer's data extent
// from the current analysis. Trim alignment runs after buffer
// insertion and may shrink the stream a buffer receives (an inset
// upstream of the buffer cuts whole rows and columns), which leaves
// the plan expecting more samples per frame than ever arrive — the
// runtime buffer would then reject the early EOL/EOF. The consumer-
// facing window geometry is the consumer's declared parameterization
// and stays as planned; only the data extent (and with it the §III-B
// double-buffered memory size) is recomputed.
func RefreshBufferPlans(g *graph.Graph) error {
	r, err := analysis.Analyze(g)
	if err != nil {
		return err
	}
	for _, n := range g.Nodes() {
		if n.Kind != graph.KindBuffer {
			continue
		}
		plan, ok := kernel.BufferPlanOf(n)
		if !ok {
			continue
		}
		info := r.In[n.Input("in")]
		if info.Flat || (info.Region.W == plan.DataW && info.Region.H == plan.DataH) {
			continue
		}
		plan.DataW, plan.DataH = info.Region.W, info.Region.H
		fresh := kernel.Buffer(n.Name(), plan)
		n.Behavior = fresh.Behavior
		n.Method("buffer").Memory = plan.MemoryWords()
		n.Attrs["label"] = plan.Label()
	}
	return nil
}

// uniqueName returns name, or name#2, #3... if taken.
func uniqueName(g *graph.Graph, name string) string {
	if g.Node(name) == nil {
		return name
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s#%d", name, i)
		if g.Node(cand) == nil {
			return cand
		}
	}
}
