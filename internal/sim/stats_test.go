package sim

import (
	"strings"
	"testing"

	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/machine"
	"blockpar/internal/mapping"
)

// convApp builds a buffered 3x3 convolution over the same 8x4 frame as
// simpleGainApp, so latency comparisons isolate pipeline depth.
func convApp(t *testing.T, rate geom.Frac) *graph.Graph {
	t.Helper()
	g := graph.New("sim-conv")
	in := g.AddInput("Input", geom.Sz(8, 4), geom.Sz(1, 1), rate)
	buf := g.Add(kernel.Buffer("Buf", kernel.BufferPlan{
		DataW: 8, DataH: 4, WinW: 3, WinH: 3, StepX: 1, StepY: 1,
	}))
	conv := g.Add(kernel.Convolution("Conv", 3))
	coeff := g.AddInput("Coeff", geom.Sz(3, 3), geom.Sz(3, 3), rate)
	out := g.AddOutput("Output", geom.Sz(1, 1))
	g.Connect(in, "out", buf, "in")
	g.Connect(buf, "out", conv, "in")
	g.Connect(coeff, "out", conv, "coeff")
	g.Connect(conv, "out", out, "in")
	return g
}

func TestNodeStatsAndLatency(t *testing.T) {
	g := simpleGainApp(geom.FInt(1000))
	res, err := Simulate(g, mapping.OneToOne(g), Options{Machine: machine.Embedded(), Frames: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Per-node stats exist for the gain kernel only (IO nodes are
	// external devices).
	gain, ok := res.Nodes["Gain"]
	if !ok {
		t.Fatalf("no node stats for Gain: %v", res.Nodes)
	}
	// 32 samples + 4 EOL + 1 EOF per frame; EOL/EOF forward as firings
	// too, so firings >= 32*3.
	if gain.Firings < 96 {
		t.Errorf("gain firings = %d, want >= 96", gain.Firings)
	}
	if gain.Busy() <= 0 {
		t.Error("gain busy time zero")
	}
	for name := range res.Nodes {
		if strings.Contains(name, "Input") || strings.Contains(name, "Output") {
			t.Errorf("IO node %q has kernel stats", name)
		}
	}

	// Latency: 3 frames recorded, each positive and bounded by a frame
	// period (the pipeline is shallow), and roughly equal in steady
	// state.
	ls := res.Latencies["Output"]
	if len(ls) != 3 {
		t.Fatalf("latencies = %v", ls)
	}
	period := 1.0 / 1000
	for f, l := range ls {
		if l <= 0 || l > 2*period {
			t.Errorf("frame %d latency = %v, want (0, %v]", f, l, 2*period)
		}
	}
	if res.MaxLatency() < ls[0] {
		t.Error("MaxLatency below a recorded latency")
	}
}

func TestLatencyGrowsWithPipelineDepth(t *testing.T) {
	// A windowed pipeline (buffer holds rows before the first output)
	// must show more latency than the shallow gain pipeline at the
	// same rate.
	shallow := simpleGainApp(geom.FInt(500))
	resShallow, err := Simulate(shallow, mapping.OneToOne(shallow), Options{Machine: machine.Embedded(), Frames: 2})
	if err != nil {
		t.Fatal(err)
	}

	deep := convApp(t, geom.FInt(500))
	resDeep, err := Simulate(deep, mapping.OneToOne(deep), Options{Machine: machine.Embedded(), Frames: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resDeep.MaxLatency() <= resShallow.MaxLatency() {
		t.Errorf("windowed pipeline latency %v not above shallow %v",
			resDeep.MaxLatency(), resShallow.MaxLatency())
	}
}
