package apps

import (
	"blockpar/internal/frame"
)

// Typed benchmark variants: the same application graphs with narrow
// element kinds declared on their inputs, exercising the typed data
// plane end to end — u8 frames through the Bayer demosaic (sensor
// bytes in, sensor bytes out) and f32 frames through the convolution
// chain (native single-precision multiply-accumulate).

// quadsKind converts a golden plane to the given kind and slices it
// into the 2×2 quads the Bayer kernel emits.
func quadsKind(plane frame.Window, k frame.Kind) []frame.Window {
	return splitQuads(plane.Convert(k))
}

// scalarsKind slices a plane into 1×1 windows of its own kind.
func scalarsKind(plane frame.Window) []frame.Window {
	out := make([]frame.Window, 0, plane.W*plane.H)
	for y := 0; y < plane.H; y++ {
		for x := 0; x < plane.W; x++ {
			out = append(out, plane.Sub(x, y, 1, 1))
		}
	}
	return out
}

// BayerU8 builds benchmark 1u8: RGGB demosaicing over byte samples.
// The mosaic arrives as u8 (one byte per sample in memory and on the
// wire), the kernel's f64 interpolation arithmetic is unchanged, and
// the three color planes leave quantized back to u8. The golden runs
// the f64 reference demosaic on the promoted scene and quantizes — the
// kernel's Window.Set narrowing makes the two paths bit-identical.
func BayerU8(name string, cfg BayerCfg) *App {
	app := Bayer(name, cfg)
	app.Graph.Node("Input").Output("out").Elem = frame.U8
	src := frame.Typed(frame.U8, frame.Bayer)
	app.Sources["Input"] = src
	app.Golden = func(seq int64) map[string][]frame.Window {
		img := src(seq, cfg.W, cfg.H).Convert(frame.F64)
		r, gg, b := frame.BayerDemosaic(img)
		return map[string][]frame.Window{
			"R": quadsKind(r, frame.U8),
			"G": quadsKind(gg, frame.U8),
			"B": quadsKind(b, frame.U8),
		}
	}
	return app
}

// MultiConvF32 builds benchmark 4f32: the convolution chain running
// natively in single precision. The input is declared f32, so no
// conversion kernels are inserted — every convolution runs its f32
// row-batched multiply-accumulate and the stream stays four bytes per
// sample end to end. The golden mirrors the kernel's accumulation
// (f32 taps, f32 accumulator, taps visited in (ky,kx) order), so
// results are byte-identical, not merely close.
func MultiConvF32(name string, cfg MultiConvCfg) *App {
	app := MultiConv(name, cfg)
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{3, 5}
	}
	app.Graph.Node("Input").Output("out").Elem = frame.F32
	src := frame.Typed(frame.F32, frame.LCG)
	app.Sources["Input"] = src

	coeffs := make([]frame.Window, len(cfg.Sizes))
	for i, k := range cfg.Sizes {
		coeffs[i] = app.Sources[coeffName(i)](0, k, k)
	}
	app.Golden = func(seq int64) map[string][]frame.Window {
		img := src(seq, cfg.W, cfg.H)
		for _, c := range coeffs {
			img = convolveRefF32(img, c)
		}
		return map[string][]frame.Window{"result": scalarsKind(img)}
	}
	return app
}

// coeffName mirrors MultiConv's coefficient input naming.
func coeffName(i int) string {
	return "Coeff" + string(rune('0'+i))
}

// convolveRefF32 is the single-precision reference convolution: f32
// taps (rounded from the f64 coefficient window exactly as the kernel's
// loadCoeff does), an f32 accumulator, and taps visited in (ky,kx)
// order — the same arithmetic the row-batched kernel loop performs, so
// the golden diff is bit-exact.
func convolveRefF32(f frame.Window, coeff frame.Window) frame.Window {
	k := coeff.W
	ow, oh := f.W-k+1, f.H-k+1
	flat := make([]float32, k*k)
	for ky := 0; ky < k; ky++ {
		for kx := 0; kx < k; kx++ {
			flat[ky*k+kx] = float32(coeff.At(k-kx-1, k-ky-1))
		}
	}
	out := frame.NewWindowKind(frame.F32, ow, oh)
	for y := 0; y < oh; y++ {
		dst := out.RowF32(y)
		for x := 0; x < ow; x++ {
			var acc float32
			for ky := 0; ky < k; ky++ {
				row := f.RowF32(y + ky)
				for kx := 0; kx < k; kx++ {
					acc += row[x+kx] * flat[ky*k+kx]
				}
			}
			dst[x] = acc
		}
	}
	return out
}
