package cluster

// Dispatcher-side partition support: openPartitioned splits one
// session's compiled graph across the fleet using internal/placement
// and co-schedules one partition per worker, all-or-nothing. The
// resulting partitionedSession implements serve.SessionHandle by
// routing each feed to the partitions owning input nodes, relaying cut
// edge streams (and their credits) between the workers, and merging
// per-partition results back into one in-order stream.
//
// Placement is all-or-nothing but failure no longer is: the session
// logs its feeds and every cut edge's item stream against the replay
// budget and tracks per-edge delivery/credit watermarks, so when one
// partition's worker dies (or drains) only that partition is re-planned
// onto a survivor and replayed — see partition_recover.go. The session
// ends with a typed serve.ErrSessionLost only when the budget is
// exhausted, a second partition dies mid-recovery, or no replacement
// worker appears within the failover window.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"blockpar/internal/frame"
	"blockpar/internal/placement"
	"blockpar/internal/runtime"
	"blockpar/internal/serve"
	"blockpar/internal/wire"
)

// errPlanWhole reports a placement that collapsed to one partition;
// Open falls back to the ordinary whole-session path.
var errPlanWhole = errors.New("placement collapsed to one partition")

// plan returns the pipeline's placement for an n-way split, computing
// it on first use. Plans are cached per (pipeline, n): a split depends
// only on the compiled graph and the target count, and the fixed seed
// keeps every session of a pipeline on the same split at a given
// fleet size.
func (d *Dispatcher) plan(p *serve.Pipeline, n int) (*placement.Plan, error) {
	key := fmt.Sprintf("%s/%d", p.ID, n)
	d.planMu.Lock()
	defer d.planMu.Unlock()
	if pl, ok := d.plans[key]; ok {
		return pl, nil
	}
	g, r, m := p.Graph(), p.Analysis(), p.Machine()
	pl, err := placement.PlanGraph(g, r, m, placement.EvenFleet(g, r, m, n), 1)
	if err != nil {
		return nil, err
	}
	d.plans[key] = pl
	return pl, nil
}

// openPartitioned places one partition per worker, all-or-nothing: the
// split spans as many distinct placeable workers as the fleet has
// right now, capped at the configured partition count, and every
// already-opened partition is torn down when any open fails. A
// degraded fleet gets a shallower split — down to a whole session on
// one worker — instead of a refusal.
func (d *Dispatcher) openPartitioned(p *serve.Pipeline, opts serve.OpenOptions) (serve.SessionHandle, error) {
	workers := d.pickDistinct(d.opts.Partitions)
	if len(workers) < 2 {
		return nil, errPlanWhole
	}
	plan, err := d.plan(p, len(workers))
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if len(plan.Partitions) < 2 {
		return nil, errPlanWhole
	}
	n := len(plan.Partitions)
	workers = workers[:n]

	ps := &partitionedSession{
		d:           d,
		p:           p,
		plan:        plan,
		maxInFlight: opts.MaxInFlight,
		inputOwner:  make(map[string]int),
		delivered:   make([]int64, n),
		bufs:        make([][]map[string][]frame.Window, n),
		cuts:        make([]cutEdgeState, len(plan.Cuts)),
		logFull:     d.opts.ReplayBudget < 0,
		results:     make(chan *runtime.StreamResult, opts.MaxInFlight+1),
		done:        make(chan struct{}),
	}
	if opts.Deadline > 0 {
		ps.deadline = time.Now().Add(opts.Deadline)
	}
	partOf := make(map[string]int)
	for i, part := range plan.Partitions {
		for _, name := range part.Nodes {
			partOf[name] = i
		}
	}
	feedSet := make(map[int]bool)
	for _, in := range p.Graph().Inputs() {
		idx := partOf[in.Name()]
		ps.inputOwner[in.Name()] = idx
		feedSet[idx] = true
	}
	outSet := make(map[int]bool)
	for _, out := range p.Graph().Outputs() {
		outSet[partOf[out.Name()]] = true
	}
	for idx := range feedSet {
		ps.feedParts = append(ps.feedParts, idx)
	}
	for idx := range outSet {
		ps.outParts = append(ps.outParts, idx)
	}
	sort.Ints(ps.feedParts)
	sort.Ints(ps.outParts)

	for i := 0; i < n; i++ {
		h, err := workers[i].placePartition(ps, i, opts)
		if err != nil {
			ps.abandonOpen()
			d.shedTotal.Add(1)
			return nil, fmt.Errorf("%w: partition %d on %s: %v", serve.ErrUnavailable, i, workers[i].addr, err)
		}
		ps.halves = append(ps.halves, h)
	}
	// A connection may have died while the later partitions opened,
	// failing the session through connLost before the client ever saw
	// it; surface that as a placement failure, not a dead handle.
	ps.mu.Lock()
	ended, cause := ps.ended, ps.err
	ps.mu.Unlock()
	if ended {
		ps.abandonOpen()
		d.shedTotal.Add(1)
		return nil, fmt.Errorf("%w: partition lost during co-schedule: %v", serve.ErrUnavailable, cause)
	}
	ps.statsID = ps.halves[0].sid
	for _, h := range ps.halves {
		go h.relay()
	}
	return ps, nil
}

// pickDistinct returns up to n distinct placeable workers, least
// loaded first.
func (d *Dispatcher) pickDistinct(n int) []*workerRef {
	var cands []*workerRef
	for _, w := range d.snapshot() {
		if w.placeable() {
			cands = append(cands, w)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].sessionCount() < cands[j].sessionCount()
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	return cands
}

// placePartition opens partition idx of ps's plan on this worker,
// registering the half before the OpenPartition frame hits the wire so
// no event naming its sid can fall into an unregistered gap.
func (w *workerRef) placePartition(ps *partitionedSession, idx int, opts serve.OpenOptions) (*partitionHalf, error) {
	w.mu.Lock()
	conn := w.conn
	needEnsure := !w.known[ps.p.ID]
	w.mu.Unlock()
	if conn == nil {
		return nil, fmt.Errorf("cluster: worker %s not connected", w.addr)
	}
	if needEnsure {
		if err := w.ensurePipeline(conn, ps.p); err != nil {
			return nil, err
		}
	}
	var deadlineMs uint32
	if opts.Deadline > 0 {
		ms := int64((opts.Deadline + time.Millisecond - 1) / time.Millisecond)
		if ms > int64(^uint32(0)) {
			ms = int64(^uint32(0))
		}
		deadlineMs = uint32(ms)
	}

	sid := w.d.nextSID.Add(1)
	h := &partitionHalf{ps: ps, idx: idx, w: w, sid: sid, conn: conn}
	h.rcond = sync.NewCond(&h.rmu)
	reply := make(chan *wire.SessionOpened, 1)
	w.mu.Lock()
	if w.conn != conn {
		w.mu.Unlock()
		return nil, fmt.Errorf("cluster: worker %s reconnected during open", w.addr)
	}
	w.pending[sid] = reply
	w.sessions[sid] = h
	w.mu.Unlock()

	m := &wire.OpenPartition{
		SID:         sid,
		Pipeline:    ps.p.ID,
		Partition:   uint32(idx),
		MaxInFlight: uint32(ps.maxInFlight),
		DeadlineMs:  deadlineMs,
		Nodes:       ps.plan.Partitions[idx].Nodes,
	}
	for _, c := range ps.plan.Cuts {
		spec := wire.EdgeSpec{
			ID: c.ID, Credit: uint32(c.Credit),
			FromNode: c.FromNode, FromPort: c.FromPort,
			ToNode: c.ToNode, ToPort: c.ToPort,
		}
		switch idx {
		case c.To:
			spec.Dir = wire.EdgeIn
		case c.From:
			spec.Dir = wire.EdgeOut
		default:
			continue
		}
		m.Edges = append(m.Edges, spec)
	}
	if err := conn.Write(m); err != nil {
		w.unregister(conn, sid)
		conn.Close()
		return nil, fmt.Errorf("cluster: open partition on %s: %w", w.addr, err)
	}
	select {
	case r, ok := <-reply:
		if !ok {
			return nil, fmt.Errorf("cluster: worker %s lost during open", w.addr)
		}
		if r.Err != "" {
			w.unregister(conn, sid)
			return nil, fmt.Errorf("cluster: worker %s refused partition: %s", w.addr, r.Err)
		}
	case <-time.After(w.d.opts.OpenTimeout):
		w.unregister(conn, sid)
		return nil, fmt.Errorf("cluster: open on %s timed out after %v", w.addr, w.d.opts.OpenTimeout)
	}
	return h, nil
}

// partitionedSession is one session split across several workers. It
// implements serve.SessionHandle; its per-worker presences are
// partitionHalf values registered in each worker's session table.
//
// Flow control is global: TryFeed bounds fed-minus-collected by
// MaxInFlight, exactly the local session's window. No per-partition
// credit tracking is needed — a merged result requires every output
// partition to have finished the frame, which requires every upstream
// partition to have consumed it, so each worker's feed queue occupancy
// stays within its maxInFlight+1 capacity. Cut edges pace themselves
// with their own credit windows, relayed between the halves.
type partitionedSession struct {
	d           *Dispatcher
	p           *serve.Pipeline
	plan        *placement.Plan
	maxInFlight int
	statsID     uint64    // stable key for the /metrics sessions table
	deadline    time.Time // absolute session deadline; zero = unbounded

	inputOwner map[string]int // input node name -> owning partition
	feedParts  []int          // partitions owning at least one input
	outParts   []int          // partitions owning at least one output

	// sendMu orders feeds and the close on every half's wire: Seq order
	// per partition, and the close after the last accepted feed.
	sendMu sync.Mutex

	mu sync.Mutex
	// halves[i] is partition i's current worker presence; recovery swaps
	// an entry in place, so reads outside openPartitioned take ps.mu.
	halves    []*partitionHalf
	fed       int64
	completed int64   // merged results delivered to the results channel
	collected int64   // results handed to Collect callers
	delivered []int64 // per-partition next expected result seq
	// bufs queues each output partition's per-frame outputs until every
	// output partition has delivered the frame; bounded by the feed
	// window (fed - completed <= maxInFlight).
	bufs      [][]map[string][]frame.Window
	closedN   int
	closeSent bool
	noFeed    error
	ended     bool
	err       error

	// Partition recovery state. feedLog holds every accepted feed (entry
	// index == seq); cuts holds each cut edge's item log and watermarks.
	// Both charge logBytes against the dispatcher's ReplayBudget; when it
	// overflows, logFull releases everything and the session reverts to
	// the pre-v7 behavior (any partition death is fatal).
	feedLog       []logEntry
	cuts          []cutEdgeState
	logBytes      int64
	logFull       bool
	recovering    bool // a partition is being reopened; feeds are paused
	recoveringIdx int

	results chan *runtime.StreamResult
	done    chan struct{}
}

// cutEdgeState is the frontend's view of one cut edge, guarded by
// ps.mu. The watermarks make per-partition replay possible: sent counts
// items delivered toward the edge's CURRENT consumer instance, acked
// counts credits relayed toward the producer (after swallowing), and
// rawAcks counts every credit the consumer ever returned. While the
// consumer recovers, buffering parks live items in the log instead of
// relaying them, and swallow absorbs the replayed instance's
// re-acknowledgements of items the producer was already credited for.
type cutEdgeState struct {
	log       []wire.Item // full item history, in order (log retains windows)
	sent      uint64
	acked     uint64
	rawAcks   uint64
	swallow   uint64
	buffering bool
	eosLogged bool // producer ended the stream at len(log)
	eosSent   bool // EOS delivered to the current consumer instance
}

// abandonOpen tears down whatever placePartition opened when the
// co-schedule fails partway. Idempotent against a concurrent fail().
func (ps *partitionedSession) abandonOpen() {
	for _, h := range ps.halves {
		h.conn.Write(&wire.Error{SID: h.sid, Msg: "partition co-schedule failed"})
		h.w.unregister(h.conn, h.sid)
	}
}

// terminate ends the session once: buffered partial frames are
// released, relays stop, and done closes. With notify set (failure
// paths) every half is also torn out of its worker's table and its
// worker told to abort — the surviving partitions must not keep
// running a session whose peer died.
func (ps *partitionedSession) terminate(err error, notify bool) {
	ps.mu.Lock()
	if ps.ended {
		ps.mu.Unlock()
		return
	}
	ps.ended = true
	if ps.err == nil {
		ps.err = err
	}
	for i := range ps.bufs {
		for _, outs := range ps.bufs[i] {
			serveReleaseOutputs(outs)
		}
		ps.bufs[i] = nil
	}
	ps.releaseLogsLocked()
	halves := append([]*partitionHalf(nil), ps.halves...)
	ps.mu.Unlock()
	for _, h := range halves {
		h.stopRelay()
		if notify {
			h.w.unregister(h.conn, h.sid)
			h.conn.Write(&wire.Error{SID: h.sid, Msg: "partitioned session failed"})
		}
	}
	close(ps.done)
}

// logFeedLocked appends one accepted feed to the replay log, taking
// over the caller's window references on success. Caller holds ps.mu.
func (ps *partitionedSession) logFeedLocked(inputs map[string]frame.Window) bool {
	if ps.logFull {
		return false
	}
	var entry logEntry
	var sz int64
	for name, win := range inputs {
		sz += int64(win.W) * int64(win.H) * 8
		entry.inputs = append(entry.inputs, wire.NamedWindow{Name: name, Win: win})
	}
	if ps.logBytes+sz > ps.d.opts.ReplayBudget {
		ps.logFullLocked()
		return false
	}
	ps.feedLog = append(ps.feedLog, entry)
	ps.logBytes += sz
	return true
}

// logEdgeItemsLocked appends one edge frame's items to the edge's
// replay log, retaining each data window for the log's reference.
// Caller holds ps.mu.
func (ps *partitionedSession) logEdgeItemsLocked(es *cutEdgeState, items []wire.Item) bool {
	if ps.logFull {
		return false
	}
	var sz int64
	for _, it := range items {
		if !it.IsToken {
			sz += int64(it.Win.W) * int64(it.Win.H) * 8
		}
	}
	if ps.logBytes+sz > ps.d.opts.ReplayBudget {
		ps.logFullLocked()
		return false
	}
	for _, it := range items {
		if !it.IsToken {
			it.Win.Retain(1)
		}
	}
	es.log = append(es.log, items...)
	ps.logBytes += sz
	return true
}

// logFullLocked abandons recoverability: a partial history can never
// replay byte-identically, so every retained window goes back to the
// arena at once rather than pinning the budget for nothing.
func (ps *partitionedSession) logFullLocked() {
	ps.logFull = true
	ps.releaseLogsLocked()
}

func (ps *partitionedSession) releaseLogsLocked() {
	for _, e := range ps.feedLog {
		for _, in := range e.inputs {
			in.Win.Release()
		}
	}
	ps.feedLog = nil
	for i := range ps.cuts {
		releaseWireItems(ps.cuts[i].log)
		ps.cuts[i].log = nil
	}
	ps.logBytes = 0
}

func (ps *partitionedSession) fail(err error) { ps.terminate(err, true) }

func (ps *partitionedSession) sessionErr() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.err != nil {
		return ps.err
	}
	return errors.New("cluster: partitioned session failed")
}

// sendClose ships CloseSession to every half, after any in-flight
// feed. A partition mid-recovery is skipped: reopenOn delivers its
// close once the replay lands (closeSent stays set so it knows to).
func (ps *partitionedSession) sendClose() {
	ps.sendMu.Lock()
	defer ps.sendMu.Unlock()
	ps.mu.Lock()
	halves := append([]*partitionHalf(nil), ps.halves...)
	skip := -1
	if ps.recovering {
		skip = ps.recoveringIdx
	}
	ps.mu.Unlock()
	for i, h := range halves {
		if i == skip {
			continue
		}
		if err := h.conn.Write(&wire.CloseSession{SID: h.sid}); err != nil {
			h.conn.Close()
		}
	}
}

// TryFeed routes one frame: each partition owning input nodes gets a
// Feed carrying its subset of the explicit windows (absent inputs
// regenerate worker-side from the frame index). The wire encodes
// copies, so the caller's window references release here.
func (ps *partitionedSession) TryFeed(inputs map[string]frame.Window) (int64, error) {
	if err := validateInputs(ps.p, inputs); err != nil {
		return 0, err
	}
	ps.sendMu.Lock()
	ps.mu.Lock()
	if ps.ended {
		err := ps.err
		ps.mu.Unlock()
		ps.sendMu.Unlock()
		if errors.Is(err, runtime.ErrSessionClosed) {
			return 0, runtime.ErrSessionClosed
		}
		return 0, err
	}
	if ps.noFeed != nil {
		err := ps.noFeed
		ps.mu.Unlock()
		ps.sendMu.Unlock()
		return 0, err
	}
	// A recovery in progress pauses the feed plane: the replay snapshot
	// freezes at ps.fed, and the client sees ordinary backpressure.
	if ps.fed-ps.collected >= int64(ps.maxInFlight) || ps.recovering {
		ps.mu.Unlock()
		ps.sendMu.Unlock()
		return 0, runtime.ErrQueueFull
	}
	seq := ps.fed
	ps.fed++
	// The replay log takes over the caller's references; retain one per
	// window for the wire writes below. When the log is full the writes
	// consume the caller's references directly, as before.
	if ps.logFeedLocked(inputs) {
		for _, win := range inputs {
			win.Retain(1)
		}
	}
	halves := append([]*partitionHalf(nil), ps.halves...)
	ps.mu.Unlock()

	for _, idx := range ps.feedParts {
		h := halves[idx]
		m := &wire.Feed{SID: h.sid, Seq: seq}
		for name, win := range inputs {
			if ps.inputOwner[name] == idx {
				m.Inputs = append(m.Inputs, wire.NamedWindow{Name: name, Win: win})
			}
		}
		if err := h.conn.Write(m); err != nil {
			// The connection died under the feed; connLost recovers the
			// partition (or fails the session) and the replay re-delivers
			// this frame. The feed counts as accepted either way.
			h.conn.Close()
		}
		h.w.framesRouted.Add(1)
	}
	for _, win := range inputs {
		win.Release()
	}
	ps.sendMu.Unlock()
	return seq, nil
}

// Collect returns the next merged frame in order, mirroring
// remoteSession.Collect's timeout and post-failure drain semantics.
func (ps *partitionedSession) Collect(timeout time.Duration) (*runtime.StreamResult, error) {
	var tc <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		tc = t.C
	}
	select {
	case res := <-ps.results:
		ps.noteCollected()
		return res, nil
	case <-tc:
		return nil, fmt.Errorf("cluster: session collect timed out after %v", timeout)
	case <-ps.done:
		select {
		case res := <-ps.results:
			ps.noteCollected()
			return res, nil
		default:
		}
		return nil, ps.sessionErr()
	}
}

func (ps *partitionedSession) noteCollected() {
	ps.mu.Lock()
	ps.collected++
	ps.mu.Unlock()
}

func (ps *partitionedSession) Fed() int64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.fed
}

func (ps *partitionedSession) Completed() int64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.completed
}

func (ps *partitionedSession) InFlight() int64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.fed - ps.collected
}

// Close drains every partition: each worker finishes its fed frames,
// end-of-stream propagates across the cut edges, and once all halves
// report SessionClosed the session completes. The close timeout
// escalates to a hard abort of every partition.
func (ps *partitionedSession) Close() error {
	ps.mu.Lock()
	already := ps.closeSent
	ps.closeSent = true
	ended := ps.ended
	ps.mu.Unlock()
	if !already && !ended {
		ps.sendClose()
	}
	select {
	case <-ps.done:
	case <-time.After(ps.d.opts.CloseTimeout):
		ps.fail(fmt.Errorf("cluster: partitioned session close not acknowledged within %v",
			ps.d.opts.CloseTimeout))
	}
	for {
		select {
		case res := <-ps.results:
			serveReleaseOutputs(res.Outputs)
		default:
			ps.mu.Lock()
			err := ps.err
			ps.mu.Unlock()
			if errors.Is(err, runtime.ErrSessionClosed) {
				return nil
			}
			return err
		}
	}
}

// partitionHalf is one partition's presence on its worker connection:
// the placedSession the worker read loop routes through, plus the
// relay queue carrying cut-edge traffic addressed to this partition.
// Relays run on their own goroutine so a read loop never blocks
// writing to a different worker's connection — two read loops relaying
// toward each other's connections could otherwise deadlock.
type partitionHalf struct {
	ps   *partitionedSession
	idx  int
	w    *workerRef
	sid  uint64
	conn *wire.Conn

	// credits counts feed credits returned by THIS worker instance,
	// guarded by ps.mu; replayFeeds paces the feed history against it.
	credits int64

	rmu    sync.Mutex
	rcond  *sync.Cond
	relayq []wire.Msg
	rstop  bool
}

// enqueueRelay queues one already-retargeted message for this half's
// connection, taking ownership of any edge-frame items. The queue is
// bounded by the edges' credit windows — a producer only sends items
// it holds credits for.
func (h *partitionHalf) enqueueRelay(m wire.Msg) {
	h.rmu.Lock()
	if h.rstop {
		h.rmu.Unlock()
		if ef, ok := m.(*wire.EdgeFrame); ok {
			releaseWireItems(ef.Items)
		}
		return
	}
	h.relayq = append(h.relayq, m)
	h.rcond.Signal()
	h.rmu.Unlock()
}

func (h *partitionHalf) stopRelay() {
	h.rmu.Lock()
	h.rstop = true
	h.rcond.Broadcast()
	h.rmu.Unlock()
}

// relay drains the queue onto the connection in order. A write failure
// closes the connection — connLost decides whether that means a
// partition recovery or the end of the session — and the loop keeps
// consuming (and releasing) queued messages until stopRelay arrives, so
// every queued window returns to the arena.
func (h *partitionHalf) relay() {
	broken := false
	for {
		h.rmu.Lock()
		for len(h.relayq) == 0 && !h.rstop {
			h.rcond.Wait()
		}
		q := h.relayq
		h.relayq = nil
		stop := h.rstop
		h.rmu.Unlock()
		for _, m := range q {
			if !broken {
				if err := h.conn.Write(m); err != nil {
					h.conn.Close()
					broken = true
				}
			}
			if ef, ok := m.(*wire.EdgeFrame); ok {
				releaseWireItems(ef.Items)
			}
		}
		if stop {
			return
		}
	}
}

// deliver merges one partition's per-frame result into the global
// stream: each output partition's local seq equals the global frame
// seq (every frame crosses every partition), so frame k completes once
// all output partitions have delivered k.
func (h *partitionHalf) deliver(w *workerRef, m *wire.Result) {
	ps := h.ps
	outputs := make(map[string][]frame.Window, len(m.Outputs))
	for _, out := range m.Outputs {
		outputs[out.Name] = out.Wins
	}
	ps.mu.Lock()
	if ps.ended {
		ps.mu.Unlock()
		serveReleaseOutputs(outputs)
		return
	}
	if m.Seq < ps.delivered[h.idx] {
		// A reopened partition re-produces the stream from the start;
		// the worker suppresses results below its resume watermark, but
		// a racing result that crossed the wire before the old conn died
		// can still land here twice. At-most-once: drop it.
		ps.mu.Unlock()
		serveReleaseOutputs(outputs)
		return
	}
	if m.Seq != ps.delivered[h.idx] {
		ps.mu.Unlock()
		serveReleaseOutputs(outputs)
		ps.fail(fmt.Errorf("cluster: worker %s delivered frame %d of partition %d, want %d",
			w.addr, m.Seq, h.idx, ps.delivered[h.idx]))
		return
	}
	ps.delivered[h.idx]++
	ps.bufs[h.idx] = append(ps.bufs[h.idx], outputs)
	var merged []*runtime.StreamResult
	for {
		ready := true
		for _, idx := range ps.outParts {
			if len(ps.bufs[idx]) == 0 {
				ready = false
				break
			}
		}
		if !ready {
			break
		}
		res := &runtime.StreamResult{Seq: ps.completed, Outputs: make(map[string][]frame.Window)}
		for _, idx := range ps.outParts {
			for name, wins := range ps.bufs[idx][0] {
				res.Outputs[name] = wins
			}
			ps.bufs[idx] = ps.bufs[idx][1:]
		}
		ps.completed++
		merged = append(merged, res)
	}
	ps.mu.Unlock()
	for _, res := range merged {
		select {
		case ps.results <- res:
		default:
			serveReleaseOutputs(res.Outputs)
			ps.fail(fmt.Errorf("cluster: worker %s overran the result window", w.addr))
		}
	}
}

// addCredits counts per-partition feed credits. The session's global
// fed-minus-collected window bounds live flow control on its own, but
// recovery replays a partition's feed history paced by exactly these
// credits — each new instance starts at zero, so the counter reflects
// only what the current instance has accepted.
func (h *partitionHalf) addCredits(n int) {
	ps := h.ps
	ps.mu.Lock()
	h.credits += int64(n)
	ps.mu.Unlock()
}

// edgeFrame relays cut-edge items from the producing partition to the
// consuming one, logging them for replay and maintaining the edge's
// delivery watermark. While the consumer is mid-recovery the items only
// land in the log — its replay goroutine delivers from there, so a
// direct relay would duplicate the stream.
func (h *partitionHalf) edgeFrame(w *workerRef, m *wire.EdgeFrame) {
	ps := h.ps
	if int(m.Edge) >= len(ps.plan.Cuts) {
		releaseWireItems(m.Items)
		ps.fail(fmt.Errorf("cluster: worker %s sent unknown cut edge %d", w.addr, m.Edge))
		return
	}
	c := ps.plan.Cuts[m.Edge]
	if c.From != h.idx {
		releaseWireItems(m.Items)
		ps.fail(fmt.Errorf("cluster: worker %s sent edge %d items from partition %d, producer is %d",
			w.addr, m.Edge, h.idx, c.From))
		return
	}
	ps.mu.Lock()
	if ps.ended || len(ps.halves) != len(ps.plan.Partitions) || ps.halves[h.idx] != h {
		ps.mu.Unlock()
		releaseWireItems(m.Items)
		return
	}
	es := &ps.cuts[m.Edge]
	logged := ps.logEdgeItemsLocked(es, m.Items)
	recovering := ps.recovering
	if m.EOS {
		es.eosLogged = true
		if es.eosSent {
			// A reopened producer replays its stream tail; the consumer
			// already heard end-of-stream from the dead instance's relay.
			m.EOS = false
		}
	}
	if es.buffering {
		ps.mu.Unlock()
		releaseWireItems(m.Items)
		if !logged && recovering {
			ps.fail(fmt.Errorf("%w: replay budget exhausted during partition recovery",
				serve.ErrSessionLost))
		}
		return
	}
	es.sent += uint64(len(m.Items))
	if m.EOS {
		es.eosSent = true
	}
	t := ps.halves[c.To]
	ps.mu.Unlock()
	if !logged && recovering {
		releaseWireItems(m.Items)
		ps.fail(fmt.Errorf("%w: replay budget exhausted during partition recovery",
			serve.ErrSessionLost))
		return
	}
	if len(m.Items) == 0 && !m.EOS {
		return // a fully-deduplicated end-of-stream repeat
	}
	t.enqueueRelay(&wire.EdgeFrame{SID: t.sid, Edge: m.Edge, EOS: m.EOS, Items: m.Items})
}

// edgeCredit accounts consumption credits and relays them toward the
// producing partition. Credits re-acknowledging replayed items are
// swallowed — the producer was credited for those before its consumer
// died — and credits addressed to a dead producer's stopped relay queue
// drop harmlessly: acked is the source of truth, and the reopen
// forwards the delta the new instance missed.
func (h *partitionHalf) edgeCredit(w *workerRef, m *wire.EdgeCredit) {
	ps := h.ps
	if int(m.Edge) >= len(ps.plan.Cuts) {
		ps.fail(fmt.Errorf("cluster: worker %s granted unknown cut edge %d", w.addr, m.Edge))
		return
	}
	c := ps.plan.Cuts[m.Edge]
	if c.To != h.idx {
		ps.fail(fmt.Errorf("cluster: worker %s granted edge %d credits from partition %d, consumer is %d",
			w.addr, m.Edge, h.idx, c.To))
		return
	}
	ps.mu.Lock()
	if ps.ended || len(ps.halves) != len(ps.plan.Partitions) || ps.halves[h.idx] != h {
		ps.mu.Unlock()
		return
	}
	es := &ps.cuts[m.Edge]
	es.rawAcks += uint64(m.N)
	n := uint64(m.N)
	if s := es.swallow; s > 0 {
		if s > n {
			s = n
		}
		es.swallow -= s
		n -= s
	}
	es.acked += n
	t := ps.halves[c.From]
	ps.mu.Unlock()
	if n > 0 {
		t.enqueueRelay(&wire.EdgeCredit{SID: t.sid, Edge: m.Edge, N: uint32(n)})
	}
}

// onClosed counts a partition's clean SessionClosed; the session
// completes once every half reported. A worker-reported error fails
// the whole session instead.
func (h *partitionHalf) onClosed(w *workerRef, m *wire.SessionClosed) {
	ps := h.ps
	if m.Err != "" {
		ps.fail(fmt.Errorf("cluster: worker %s closed partition %d: %s", w.addr, h.idx, m.Err))
		return
	}
	ps.mu.Lock()
	if ps.ended {
		ps.mu.Unlock()
		return
	}
	ps.closedN++
	allClosed := ps.closedN == len(ps.halves)
	noFeed := ps.noFeed
	ps.mu.Unlock()
	if !allClosed {
		return
	}
	// Every half delivered its results on its own connection before its
	// SessionClosed, so the merge is complete by now.
	err := error(runtime.ErrSessionClosed)
	if noFeed != nil {
		err = noFeed
	}
	ps.terminate(err, false)
}

// failSession ends the whole session: a worker-reported execution
// error is deterministic, so replaying the partition elsewhere would
// only fail again.
func (h *partitionHalf) failSession(err error) { h.ps.fail(err) }

func (h *partitionHalf) creditsOut() int { return 0 }

// demandCyc weights each half with the whole pipeline's demand: a
// partitioned session's kernels span workers, but the analysis prices
// the graph as a unit and conservative packing beats overcommit.
func (h *partitionHalf) demandCyc() float64 { return h.ps.p.CyclesPerSec }

func (h *partitionHalf) sessionRow() (SessionStats, uint64) {
	ps := h.ps
	ps.mu.Lock()
	row := SessionStats{
		Pipeline:    ps.p.ID,
		Partitions:  len(ps.halves),
		Workers:     make([]string, 0, len(ps.halves)),
		ReplayBytes: ps.logBytes,
	}
	for _, hh := range ps.halves {
		row.Workers = append(row.Workers, hh.w.addr)
	}
	ps.mu.Unlock()
	return row, ps.statsID
}

var _ serve.SessionHandle = (*partitionedSession)(nil)
var _ placedSession = (*partitionHalf)(nil)
