// Package transform implements the paper's automatic program
// transformations: buffer insertion (§III-B), trimming/padding for
// alignment (§III-C), and parallelization with split/join/replicate
// kernels under data-dependency constraints (§IV), including the
// column-wise splitting of memory-bound buffers (§IV-C, Figure 10).
package transform

import (
	"fmt"

	"blockpar/internal/analysis"
	"blockpar/internal/conn"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
)

// InsertBuffers analyzes the graph and inserts a parameterized buffer
// kernel on every edge where a windowed consumer reads a raw sample
// stream (the NeedsBuffer problems), exactly as Figure 3 shows for the
// image-processing example. Buffers directly fed by application inputs
// are marked NoMultiplex (Figure 12: "the initial input buffers are not
// multiplexed because they may block the input").
//
// Edges belonging to a declared windowed-sharing connection whose
// consumers need the identical window plan are lowered together onto
// one ShareBuffer: a single ring serves every consumer, each completed
// window travels as one retained arena reference per consumer, and the
// group is tagged for co-location so a placement plan cannot cut the
// shared ring away from its readers. Share groups whose consumers
// disagree on the plan fall back to private buffers per edge.
func InsertBuffers(g *graph.Graph) error {
	r, err := analysis.Analyze(g)
	if err != nil {
		return err
	}
	probs := r.ProblemsOfKind(analysis.NeedsBuffer)

	byConn := make(map[*graph.Conn][]analysis.Problem)
	var singles []analysis.Problem
	for _, p := range probs {
		if p.Edge == nil {
			return fmt.Errorf("transform: needs-buffer problem without edge at %s", p.Node.Name())
		}
		if c := g.ConnOfEdge(p.Edge); c != nil && c.Family == conn.Share {
			byConn[c] = append(byConn[c], p)
			continue
		}
		singles = append(singles, p)
	}

	for _, c := range append([]*graph.Conn(nil), g.Conns()...) {
		group := byConn[c]
		if len(group) == 0 {
			continue
		}
		if !shareable(c, group) {
			singles = append(singles, group...)
			continue
		}
		if err := lowerShare(g, r, c, group); err != nil {
			return err
		}
	}

	for _, p := range singles {
		if err := insertBuffer(g, r, p.Edge); err != nil {
			return err
		}
	}
	return nil
}

// insertBuffer splices one private buffer onto a needs-buffer edge.
func insertBuffer(g *graph.Graph, r *analysis.Result, e *graph.Edge) error {
	info := r.Out[e.From]
	consumer := e.To
	if info.ItemSize.W != 1 || info.ItemSize.H != 1 {
		return fmt.Errorf("transform: cannot buffer %s: items are %v, not raw samples",
			e, info.ItemSize)
	}
	plan := kernel.BufferPlan{
		DataW: info.Region.W, DataH: info.Region.H,
		WinW: consumer.Size.W, WinH: consumer.Size.H,
		StepX: consumer.Step.X, StepY: consumer.Step.Y,
	}
	name := uniqueName(g, fmt.Sprintf("Buffer(%s.%s)", consumer.Node().Name(), consumer.Name))
	buf := kernel.Buffer(name, plan)
	if e.From.Node().Kind == graph.KindInput {
		buf.NoMultiplex = true
	}
	g.Add(buf)
	from := e.From.Node()
	to := consumer.Node()
	g.Disconnect(e)
	g.Connect(from, e.From.Name, buf, "in")
	g.Connect(buf, "out", to, consumer.Name)
	return nil
}

// shareable reports whether a share group's needs-buffer edges can be
// lowered onto one ring: every declared consumer needs buffering and all
// of them ask for the same window parameterization.
func shareable(c *graph.Conn, group []analysis.Problem) bool {
	if len(group) != len(c.To) {
		return false
	}
	first := c.To[0]
	for _, p := range c.To[1:] {
		if p.Size != first.Size || p.Step != first.Step {
			return false
		}
	}
	return true
}

// lowerShare replaces a share group's edges with one ShareBuffer whose
// out_i feeds the group's i-th declared consumer, and tags the ring and
// every consumer with the group name for mapping/placement co-location.
func lowerShare(g *graph.Graph, r *analysis.Result, c *graph.Conn, group []analysis.Problem) error {
	info := r.Out[c.From]
	if info.ItemSize.W != 1 || info.ItemSize.H != 1 {
		return fmt.Errorf("transform: cannot share-buffer connection %q: items are %v, not raw samples",
			c.Name, info.ItemSize)
	}
	first := c.To[0]
	plan := kernel.BufferPlan{
		DataW: info.Region.W, DataH: info.Region.H,
		WinW: first.Size.W, WinH: first.Size.H,
		StepX: first.Step.X, StepY: first.Step.Y,
	}
	name := uniqueName(g, fmt.Sprintf("Share(%s)", c.Name))
	buf := kernel.ShareBuffer(name, plan, len(c.To))
	if c.From.Node().Kind == graph.KindInput {
		buf.NoMultiplex = true
	}
	g.Add(buf)
	buf.Attrs["share"] = c.Name
	for _, p := range group {
		g.Disconnect(p.Edge)
	}
	g.Connect(c.From.Node(), c.From.Name, buf, "in")
	for i, to := range c.To {
		g.Connect(buf, fmt.Sprintf("out%d", i), to.Node(), to.Name)
		to.Node().Attrs["share"] = c.Name
	}
	g.RemoveConn(c)
	return nil
}

// RefreshBufferPlans re-derives every inserted buffer's data extent
// from the current analysis. Trim alignment runs after buffer
// insertion and may shrink the stream a buffer receives (an inset
// upstream of the buffer cuts whole rows and columns), which leaves
// the plan expecting more samples per frame than ever arrive — the
// runtime buffer would then reject the early EOL/EOF. The consumer-
// facing window geometry is the consumer's declared parameterization
// and stays as planned; only the data extent (and with it the §III-B
// double-buffered memory size) is recomputed.
func RefreshBufferPlans(g *graph.Graph) error {
	r, err := analysis.Analyze(g)
	if err != nil {
		return err
	}
	for _, n := range g.Nodes() {
		if n.Kind != graph.KindBuffer {
			continue
		}
		if plan, ways, ok := kernel.SharePlanOf(n); ok {
			info := r.In[n.Input("in")]
			if info.Flat || (info.Region.W == plan.DataW && info.Region.H == plan.DataH) {
				continue
			}
			plan.DataW, plan.DataH = info.Region.W, info.Region.H
			fresh := kernel.ShareBuffer(n.Name(), plan, ways)
			n.Behavior = fresh.Behavior
			n.Method("share").Memory = plan.MemoryWords()
			n.Attrs["label"] = fresh.Attrs["label"]
			continue
		}
		plan, ok := kernel.BufferPlanOf(n)
		if !ok {
			continue
		}
		info := r.In[n.Input("in")]
		if info.Flat || (info.Region.W == plan.DataW && info.Region.H == plan.DataH) {
			continue
		}
		plan.DataW, plan.DataH = info.Region.W, info.Region.H
		fresh := kernel.Buffer(n.Name(), plan)
		n.Behavior = fresh.Behavior
		n.Method("buffer").Memory = plan.MemoryWords()
		n.Attrs["label"] = plan.Label()
	}
	return nil
}

// uniqueName returns name, or name#2, #3... if taken.
func uniqueName(g *graph.Graph, name string) string {
	if g.Node(name) == nil {
		return name
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s#%d", name, i)
		if g.Node(cand) == nil {
			return cand
		}
	}
}
