// Package geom provides the exact-arithmetic geometry primitives used by
// the block-parallel compiler: rational numbers for offsets and rates,
// 2-D sizes, steps, offsets, and rectangles.
//
// The paper's data-flow analyses (iteration sizes and rates, inset
// propagation) require exact arithmetic: input rates are hard real-time
// constraints and offsets may be fractional for downsampling kernels
// (paper §II-A, footnote 2). All of that is represented with Frac, a
// normalized int64 rational.
package geom

import (
	"fmt"
	"math"
)

// Frac is an exact rational number Num/Den. The zero value is 0/1.
// Fracs are always kept normalized: Den > 0 and gcd(|Num|, Den) == 1.
type Frac struct {
	Num int64
	Den int64
}

// F returns the normalized fraction num/den. It panics if den == 0.
func F(num, den int64) Frac {
	if den == 0 {
		panic("geom: fraction with zero denominator")
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := gcd64(abs64(num), den)
	if g > 1 {
		num /= g
		den /= g
	}
	return Frac{Num: num, Den: den}
}

// FInt returns the fraction n/1.
func FInt(n int64) Frac { return Frac{Num: n, Den: 1} }

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// norm re-normalizes a possibly denormal fraction.
func (f Frac) norm() Frac { return F(f.Num, f.Den) }

// den returns the denominator, treating the zero value Frac{} as 0/1.
func (f Frac) den() int64 {
	if f.Den == 0 {
		return 1
	}
	return f.Den
}

// Add returns f + g.
func (f Frac) Add(g Frac) Frac { return F(f.Num*g.den()+g.Num*f.den(), f.den()*g.den()) }

// Sub returns f - g.
func (f Frac) Sub(g Frac) Frac { return F(f.Num*g.den()-g.Num*f.den(), f.den()*g.den()) }

// Mul returns f * g.
func (f Frac) Mul(g Frac) Frac { return F(f.Num*g.Num, f.den()*g.den()) }

// Div returns f / g. It panics if g is zero.
func (f Frac) Div(g Frac) Frac {
	if g.Num == 0 {
		panic("geom: division by zero fraction")
	}
	return F(f.Num*g.den(), f.den()*g.Num)
}

// MulInt returns f * n.
func (f Frac) MulInt(n int64) Frac { return F(f.Num*n, f.den()) }

// Neg returns -f.
func (f Frac) Neg() Frac { return Frac{Num: -f.Num, Den: f.den()} }

// Cmp compares f and g, returning -1, 0, or +1.
func (f Frac) Cmp(g Frac) int {
	lhs := f.Num * g.den()
	rhs := g.Num * f.den()
	switch {
	case lhs < rhs:
		return -1
	case lhs > rhs:
		return 1
	default:
		return 0
	}
}

// Less reports whether f < g.
func (f Frac) Less(g Frac) bool { return f.Cmp(g) < 0 }

// Equal reports whether f == g as rationals.
func (f Frac) Equal(g Frac) bool { return f.Cmp(g) == 0 }

// IsZero reports whether f == 0.
func (f Frac) IsZero() bool { return f.Num == 0 }

// IsInt reports whether f is an integer.
func (f Frac) IsInt() bool { return f.den() == 1 || f.Num == 0 }

// Int returns the integer value of f, truncating toward zero.
func (f Frac) Int() int64 { return f.Num / f.den() }

// Floor returns the greatest integer <= f.
func (f Frac) Floor() int64 {
	d := f.den()
	q := f.Num / d
	if f.Num%d != 0 && f.Num < 0 {
		q--
	}
	return q
}

// Ceil returns the least integer >= f.
func (f Frac) Ceil() int64 {
	d := f.den()
	q := f.Num / d
	if f.Num%d != 0 && f.Num > 0 {
		q++
	}
	return q
}

// Float returns f as a float64 (for reporting only; analyses stay exact).
func (f Frac) Float() float64 { return float64(f.Num) / float64(f.den()) }

// String renders f as "n" for integers or "n/d" otherwise.
func (f Frac) String() string {
	if f.IsInt() {
		return fmt.Sprintf("%d", f.Int())
	}
	return fmt.Sprintf("%d/%d", f.Num, f.den())
}

// FracFromFloat converts a float to the nearest fraction with denominator
// up to maxDen, for ingesting user-supplied offsets such as 2.5.
func FracFromFloat(v float64, maxDen int64) Frac {
	if maxDen < 1 {
		maxDen = 1
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic("geom: cannot convert non-finite float to Frac")
	}
	best := F(int64(math.Round(v)), 1)
	bestErr := math.Abs(v - best.Float())
	for den := int64(2); den <= maxDen; den++ {
		num := int64(math.Round(v * float64(den)))
		cand := F(num, den)
		if err := math.Abs(v - cand.Float()); err < bestErr {
			best, bestErr = cand, err
		}
	}
	return best
}
