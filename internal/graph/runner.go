package graph

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/token"
)

// Item is one element of a stream channel: either a data window or a
// control token (paper §II-C: control tokens travel in-band, in order,
// on the same streams as the data).
type Item struct {
	IsToken bool
	Tok     token.Token
	Win     frame.Window
}

// DataItem wraps a window as a stream item.
func DataItem(w frame.Window) Item { return Item{Win: w} }

// TokenItem wraps a control token as a stream item.
func TokenItem(t token.Token) Item { return Item{IsToken: true, Tok: t} }

// Words returns the channel words this item occupies (tokens cost one
// word of signalling).
func (it Item) Words() int64 {
	if it.IsToken {
		return 1
	}
	return int64(it.Win.W * it.Win.H)
}

func (it Item) String() string {
	if it.IsToken {
		return it.Tok.String()
	}
	return it.Win.String()
}

// RunContext is the channel-level execution interface handed to Runner
// kernels (buffers, splits, joins, insets, pads, replicates): kernels
// whose firing rules are a finite state machine over the stream rather
// than the simple "all trigger inputs have an item" rule. Recv blocks;
// Send blocks on a full downstream channel.
type RunContext interface {
	// Recv returns the next item on the named input; ok is false once
	// the channel is closed and drained.
	Recv(input string) (it Item, ok bool)
	// Send writes an item to the named output, fanning out to every
	// connected consumer.
	Send(output string, it Item)
	// Node returns the node being executed.
	Node() *Node
}

// Runner is implemented by Behaviors that drive their own stream FSM
// instead of the generic method-trigger loop. The runtime calls Run
// once; Run returns when its inputs are exhausted.
type Runner interface {
	Behavior
	Run(ctx RunContext) error
}

// RunnerBehavior reports whether the node's behavior wants FSM-style
// execution.
func RunnerBehavior(n *Node) (Runner, bool) {
	r, ok := n.Behavior.(Runner)
	return r, ok
}

// ErrHalt can be returned by a Runner to stop cleanly before input
// exhaustion (used by sinks with a frame budget).
var ErrHalt = fmt.Errorf("graph: runner halted")
