// Package serve hosts compiled block-parallel pipelines behind a
// stdlib-only HTTP API, turning the one-shot CLI tools into a
// long-running streaming-ingest server. Pipelines — suite benchmarks by
// ID and arbitrary JSON application descriptions — are compiled once
// into a Registry at startup; clients then open concurrent sessions,
// each backed by a resident internal/runtime streaming execution
// instance, feed frames incrementally, and collect per-frame outputs
// that are byte-identical to the batch runtime. Per-session frame
// queues are bounded (HTTP 429 on saturation), shutdown drains every
// accepted frame, and /healthz, /pipelines, and /metrics expose the
// server's state. See docs/serving.md.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"blockpar/internal/analysis"
	"blockpar/internal/apps"
	"blockpar/internal/core"
	"blockpar/internal/desc"
	"blockpar/internal/frame"
	"blockpar/internal/graph"
	"blockpar/internal/machine"
	"blockpar/internal/runtime"
	"blockpar/internal/transform"
)

// Pipeline is one compiled application in the server's inventory. The
// compiled graph is a template: behaviors carry per-run state, so every
// session executes its own clone while the compilation cost (analysis
// plus all transformations) is paid exactly once.
type Pipeline struct {
	ID   string
	Name string
	// Source records where the pipeline came from: "suite" or "json".
	Source string

	graph    *graph.Graph
	analysis *analysis.Result
	sources  map[string]frame.Generator
	mach     machine.Machine
	// raw is the original JSON descriptor for Source == "json"; the
	// cluster dispatcher forwards it so workers can compile the same
	// pipeline themselves.
	raw []byte

	// Analysis-derived summary, computed at compile time.
	Nodes        int
	CyclesPerSec float64
	MemoryWords  int64
	CompileTime  time.Duration
}

// NewSession clones the compiled template and starts a streaming
// execution instance over it.
func (p *Pipeline) NewSession(opts runtime.SessionOptions) (*runtime.Session, error) {
	if opts.Sources == nil {
		opts.Sources = p.sources
	}
	return runtime.NewSession(p.graph.Clone(), opts)
}

// Graph returns the compiled template graph. It must not be executed
// directly — clone it (as NewSession does) to run it.
func (p *Pipeline) Graph() *graph.Graph { return p.graph }

// Sources returns the pipeline's default input generators.
func (p *Pipeline) Sources() map[string]frame.Generator { return p.sources }

// Analysis returns the compile-time analysis of the template graph.
// The placement layer reads it to cost partitions and type cut edges.
func (p *Pipeline) Analysis() *analysis.Result { return p.analysis }

// Machine returns the machine model the pipeline was compiled for.
func (p *Pipeline) Machine() machine.Machine { return p.mach }

// Descriptor returns the original JSON description for pipelines
// registered via AddJSON, nil otherwise.
func (p *Pipeline) Descriptor() []byte { return p.raw }

// Registry is the server's compile cache: pipeline ID → compiled
// template. Registration compiles; lookups are cheap.
type Registry struct {
	mach machine.Machine

	mu   sync.RWMutex
	byID map[string]*Pipeline
}

// NewRegistry creates an empty registry compiling for machine m.
func NewRegistry(m machine.Machine) *Registry {
	return &Registry{mach: m, byID: make(map[string]*Pipeline)}
}

// AddApp compiles an application and registers it under id.
func (r *Registry) AddApp(id, source string, app *apps.App) (*Pipeline, error) {
	if id == "" {
		return nil, fmt.Errorf("serve: pipeline needs an id")
	}
	r.mu.RLock()
	_, dup := r.byID[id]
	r.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("serve: pipeline %q already registered", id)
	}
	start := time.Now()
	c, err := core.Compile(app.Graph, core.Config{
		Machine:        r.mach,
		Align:          transform.Trim,
		Parallelize:    true,
		BufferStriping: true,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: compile %q: %w", id, err)
	}
	p := &Pipeline{
		ID:          id,
		Name:        app.Name,
		Source:      source,
		graph:       c.Graph,
		analysis:    c.Analysis,
		sources:     app.Sources,
		mach:        r.mach,
		Nodes:       len(c.Graph.Nodes()),
		CompileTime: time.Since(start),
	}
	for _, n := range c.Graph.Nodes() {
		l := c.Analysis.LoadOf(n, r.mach)
		p.CyclesPerSec += l.CyclesPerSec
		p.MemoryWords += l.MemWords
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[id]; dup {
		return nil, fmt.Errorf("serve: pipeline %q already registered", id)
	}
	r.byID[id] = p
	return p, nil
}

// AddSuite compiles and registers the named Figure 13 benchmarks
// (all of them when ids is empty) under their suite IDs.
func (r *Registry) AddSuite(ids ...string) error {
	if len(ids) == 0 {
		ids = apps.IDs()
	}
	for _, id := range ids {
		app, err := apps.ByID(id)
		if err != nil {
			return err
		}
		if _, err := r.AddApp(id, "suite", app); err != nil {
			return err
		}
	}
	return nil
}

// AddJSON parses a JSON application description, compiles it, and
// registers it under its own name.
func (r *Registry) AddJSON(data []byte) (*Pipeline, error) {
	g, err := desc.Parse(data)
	if err != nil {
		return nil, err
	}
	p, err := r.AddApp(g.Name, "json", &apps.App{Name: g.Name, Graph: g})
	if err != nil {
		return nil, err
	}
	p.raw = append([]byte(nil), data...)
	return p, nil
}

// AddCompiled registers an already-compiled graph as a pipeline,
// bypassing compilation. The conformance cluster backend uses it to
// serve the exact compiled variant under test; the graph is treated as
// a template and cloned per session like every other pipeline.
func (r *Registry) AddCompiled(id, name string, c *core.Compiled, sources map[string]frame.Generator) (*Pipeline, error) {
	if id == "" {
		return nil, fmt.Errorf("serve: pipeline needs an id")
	}
	p := &Pipeline{
		ID:       id,
		Name:     name,
		Source:   "compiled",
		graph:    c.Graph,
		analysis: c.Analysis,
		sources:  sources,
		mach:     r.mach,
		Nodes:    len(c.Graph.Nodes()),
	}
	// Price the pipeline like AddApp does: admission control compares
	// this projected demand against fleet capacity, so a pre-compiled
	// pipeline must not register as free.
	for _, n := range c.Graph.Nodes() {
		l := c.Analysis.LoadOf(n, r.mach)
		p.CyclesPerSec += l.CyclesPerSec
		p.MemoryWords += l.MemWords
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[id]; dup {
		return nil, fmt.Errorf("serve: pipeline %q already registered", id)
	}
	r.byID[id] = p
	return p, nil
}

// Get returns the pipeline registered under id.
func (r *Registry) Get(id string) (*Pipeline, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.byID[id]
	return p, ok
}

// List returns every registered pipeline, sorted by ID.
func (r *Registry) List() []*Pipeline {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Pipeline, 0, len(r.byID))
	for _, p := range r.byID {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
