package cluster

// Worker-side partition execution: a partitioned session runs one
// member subset of a pipeline's compiled graph, with boundary shims
// splicing its cut edges onto the wire. Inbound cut edges queue
// decoded items for a runtime.BoundarySource and return credits as the
// partition consumes; outbound cut edges drain a runtime.BoundarySink
// through a batching sender paced by the peer's credits. The session
// itself reuses the ordinary feeder/collector machinery — a partition
// is just a session whose graph happens to have boundary nodes.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"blockpar/internal/graph"
	"blockpar/internal/runtime"
	"blockpar/internal/wire"
)

// edgeBatchItems caps the items per EdgeFrame so one frame never
// approaches the wire's frame bound regardless of window size.
const edgeBatchItems = 256

// partitionAbortGrace bounds the natural drain after an abort: once
// the cut edges are released the pipeline should run dry on its own
// (that is what returns every arena reference); if it wedges anyway,
// the runtime is stopped hard as a last resort.
const partitionAbortGrace = 2 * time.Second

func (c *workerConn) openPartition(m *wire.OpenPartition) {
	c.openPartitionResume(m, 0, nil)
}

// reopenPartition resumes a partition whose previous worker died or
// drained (protocol v7): the same open path, plus resume watermarks —
// the runtime re-executes the stream from frame zero to rebuild its
// deterministic state, while the boundary shims and collector suppress
// the prefix the rest of the fleet already saw.
func (c *workerConn) reopenPartition(m *wire.ReopenPartition) {
	resume := make(map[uint32]wire.EdgeResume, len(m.Resume))
	for _, er := range m.Resume {
		resume[er.Edge] = er
	}
	c.openPartitionResume(&wire.OpenPartition{
		SID:         m.SID,
		Pipeline:    m.Pipeline,
		Partition:   m.Partition,
		MaxInFlight: m.MaxInFlight,
		DeadlineMs:  m.DeadlineMs,
		Nodes:       m.Nodes,
		Edges:       m.Edges,
	}, m.ResumeResults, resume)
}

func (c *workerConn) openPartitionResume(m *wire.OpenPartition, resumeResults int64, resume map[uint32]wire.EdgeResume) {
	if c.w.isDraining() {
		c.send(&wire.SessionOpened{SID: m.SID, Err: "worker draining"})
		return
	}
	p, ok := c.w.reg.Get(m.Pipeline)
	if !ok {
		c.send(&wire.SessionOpened{SID: m.SID, Err: fmt.Sprintf("unknown pipeline %q", m.Pipeline)})
		return
	}
	maxInFlight := int(m.MaxInFlight)
	if maxInFlight <= 0 || maxInFlight > 1024 {
		c.send(&wire.SessionOpened{SID: m.SID, Err: fmt.Sprintf("max-in-flight %d out of range", m.MaxInFlight)})
		return
	}
	s := &workerSession{
		conn:          c,
		sid:           m.SID,
		partitioned:   true,
		resumeResults: resumeResults,
		feedq:         make(chan *wire.Feed, maxInFlight+1),
		abortc:        make(chan struct{}),
		feederDone:    make(chan struct{}),
		collectorDone: make(chan struct{}),
		inEdges:       make(map[uint32]*inEdge),
		outEdges:      make(map[uint32]*outEdge),
	}
	g, err := partitionGraph(p.Graph(), m, s, resume)
	if err != nil {
		c.send(&wire.SessionOpened{SID: m.SID, Err: err.Error()})
		return
	}
	// A partition with no graph outputs never produces results, so the
	// ordinary result-driven credit return would starve the frontend's
	// feed window. Grant the credit at feed acceptance instead — the
	// bound (frames resident in the feed queue plus the runtime) is the
	// same one MaxInFlight already enforces.
	s.creditFeeds = len(g.Outputs()) == 0
	for id, er := range resume {
		oe := s.outEdges[id]
		if oe == nil {
			c.send(&wire.SessionOpened{SID: m.SID, Err: fmt.Sprintf("resume mark for unknown out edge %d", id)})
			return
		}
		oe.skip = er.SkipItems
	}
	rt, err := runtime.NewSession(g, runtime.SessionOptions{
		MaxInFlight: maxInFlight,
		Sources:     p.Sources(),
		Executor:    c.w.opts.Executor,
		Workers:     c.w.opts.Workers,
	})
	if err != nil {
		c.send(&wire.SessionOpened{SID: m.SID, Err: err.Error()})
		return
	}
	s.rt = rt
	c.mu.Lock()
	if _, dup := c.sessions[m.SID]; dup {
		c.mu.Unlock()
		rt.Close()
		c.send(&wire.SessionOpened{SID: m.SID, Err: "session id already in use"})
		return
	}
	c.sessions[m.SID] = s
	c.mu.Unlock()
	if m.DeadlineMs > 0 {
		s.ttl = time.AfterFunc(time.Duration(m.DeadlineMs)*time.Millisecond, func() {
			s.beginAbort(errors.New("session deadline exceeded"), true)
		})
	}
	for _, oe := range s.outEdges {
		go oe.sender()
	}
	go s.feeder()
	go s.collector()
	c.send(&wire.SessionOpened{SID: m.SID})
}

// partitionGraph builds the sub-graph a partition executes: a clone of
// the compiled template with the cut edges replaced by boundary shims
// and every non-member node removed. The returned graph still passes
// graph validation — an OpenPartition that leaves a member input
// dangling (a plan/spec mismatch) fails the session open instead of
// executing nonsense.
func partitionGraph(template *graph.Graph, m *wire.OpenPartition, s *workerSession, resume map[uint32]wire.EdgeResume) (*graph.Graph, error) {
	g := template.Clone()
	member := make(map[string]bool, len(m.Nodes))
	for _, name := range m.Nodes {
		if g.Node(name) == nil {
			return nil, fmt.Errorf("partition names unknown node %q", name)
		}
		member[name] = true
	}
	for _, spec := range m.Edges {
		if _, dup := s.inEdges[spec.ID]; dup {
			return nil, fmt.Errorf("duplicate cut edge %d", spec.ID)
		}
		if _, dup := s.outEdges[spec.ID]; dup {
			return nil, fmt.Errorf("duplicate cut edge %d", spec.ID)
		}
		if spec.Credit == 0 {
			// A reopened outbound edge may legitimately start with zero
			// credits: the dead instance had the peer's whole window in
			// flight, so the new one waits for returns before producing.
			_, resumed := resume[spec.ID]
			if !resumed || spec.Dir != wire.EdgeOut {
				return nil, fmt.Errorf("cut edge %d has no credit window", spec.ID)
			}
		}
		switch spec.Dir {
		case wire.EdgeIn:
			to := g.Node(spec.ToNode)
			if to == nil || !member[spec.ToNode] {
				return nil, fmt.Errorf("cut edge %d consumer %q not a member", spec.ID, spec.ToNode)
			}
			tp := to.Input(spec.ToPort)
			if tp == nil {
				return nil, fmt.Errorf("cut edge %d: %q has no input %q", spec.ID, spec.ToNode, spec.ToPort)
			}
			e := g.EdgeTo(tp)
			if e == nil || e.From.Node().Name() != spec.FromNode || e.From.Name != spec.FromPort {
				return nil, fmt.Errorf("cut edge %d does not match an edge into %s.%s",
					spec.ID, spec.ToNode, spec.ToPort)
			}
			g.Disconnect(e)
			ie := newInEdge(s, spec)
			s.inEdges[spec.ID] = ie
			b := graph.NewNode(fmt.Sprintf("__cut%d_src", spec.ID), graph.KindBoundary)
			b.CreateOutput("out", e.From.Size, e.From.Step)
			b.Behavior = &runtime.BoundarySource{Pull: ie.pull, Ack: ie.ack}
			g.Add(b)
			g.Connect(b, "out", to, spec.ToPort)
			member[b.Name()] = true
		case wire.EdgeOut:
			from := g.Node(spec.FromNode)
			if from == nil || !member[spec.FromNode] {
				return nil, fmt.Errorf("cut edge %d producer %q not a member", spec.ID, spec.FromNode)
			}
			fp := from.Output(spec.FromPort)
			if fp == nil {
				return nil, fmt.Errorf("cut edge %d: %q has no output %q", spec.ID, spec.FromNode, spec.FromPort)
			}
			var cut *graph.Edge
			for _, e := range g.EdgesFrom(fp) {
				if e.To.Node().Name() == spec.ToNode && e.To.Name == spec.ToPort {
					cut = e
					break
				}
			}
			if cut == nil {
				return nil, fmt.Errorf("cut edge %d does not match an edge %s.%s -> %s.%s",
					spec.ID, spec.FromNode, spec.FromPort, spec.ToNode, spec.ToPort)
			}
			g.Disconnect(cut)
			oe := newOutEdge(s, spec)
			s.outEdges[spec.ID] = oe
			b := graph.NewNode(fmt.Sprintf("__cut%d_sink", spec.ID), graph.KindBoundary)
			b.CreateInput("in", cut.To.Size, cut.To.Step, cut.To.Offset)
			b.Behavior = &runtime.BoundarySink{Push: oe.push, Close: oe.eos}
			g.Add(b)
			g.Connect(from, spec.FromPort, b, "in")
			member[b.Name()] = true
		default:
			return nil, fmt.Errorf("cut edge %d has direction %d", spec.ID, spec.Dir)
		}
	}
	nodes := append([]*graph.Node(nil), g.Nodes()...)
	for _, n := range nodes {
		if !member[n.Name()] {
			g.Remove(n)
		}
	}
	return g, nil
}

// abortEdges releases every cut edge so the partition can drain
// without its peers: inbound streams turn into immediate end-of-stream
// (queued items released), outbound pushes stop blocking for credit
// and sink their items back to the arena. Idempotent and safe to call
// from any goroutine.
func (s *workerSession) abortEdges() {
	for _, ie := range s.inEdges {
		ie.abort()
	}
	for _, oe := range s.outEdges {
		oe.abort()
	}
}

func (s *workerSession) edgeFrame(m *wire.EdgeFrame) {
	ie := s.inEdges[m.Edge]
	if ie == nil {
		releaseWireItems(m.Items)
		s.beginAbort(fmt.Errorf("edge frame for unknown cut edge %d", m.Edge), true)
		return
	}
	ie.deliver(m)
}

func (s *workerSession) edgeCredit(m *wire.EdgeCredit) {
	oe := s.outEdges[m.Edge]
	if oe == nil {
		s.beginAbort(fmt.Errorf("edge credit for unknown cut edge %d", m.Edge), true)
		return
	}
	oe.addCredits(int(m.N))
}

func releaseWireItems(items []wire.Item) {
	for _, it := range items {
		if !it.IsToken {
			it.Win.Release()
		}
	}
}

// inEdge is the consuming end of a cut edge: a bounded in-order item
// queue between the wire read loop and the partition's boundary
// source, granting credits back as items are handed downstream.
type inEdge struct {
	s      *workerSession
	id     uint32
	credit int

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []graph.Item
	eos     bool
	aborted bool
	pending int // consumed items not yet credited back
}

func newInEdge(s *workerSession, spec wire.EdgeSpec) *inEdge {
	ie := &inEdge{s: s, id: spec.ID, credit: int(spec.Credit)}
	ie.cond = sync.NewCond(&ie.mu)
	return ie
}

// deliver queues one EdgeFrame's items. The producer holds a credit
// per item, so the queue is bounded by the window; growth past it is a
// protocol violation.
func (ie *inEdge) deliver(m *wire.EdgeFrame) {
	ie.mu.Lock()
	if ie.aborted {
		ie.mu.Unlock()
		releaseWireItems(m.Items)
		return
	}
	for _, it := range m.Items {
		if it.IsToken {
			ie.queue = append(ie.queue, graph.TokenItem(it.Tok))
		} else {
			// The wire decoder validated the batch descriptor against the
			// window (protocol v6), so it re-enters the runtime as-is.
			ie.queue = append(ie.queue, graph.Item{
				Win: it.Win,
				B:   graph.Batch{N: it.B.N, Sx: it.B.Sx, Bw: it.B.Bw},
			})
		}
	}
	if m.EOS {
		ie.eos = true
	}
	overrun := len(ie.queue) > ie.credit
	ie.cond.Broadcast()
	ie.mu.Unlock()
	if overrun {
		ie.s.beginAbort(fmt.Errorf("cut edge %d overran its credit window", ie.id), true)
	}
}

// pull is the BoundarySource stream: the next item in order, or false
// at end-of-stream or abort.
func (ie *inEdge) pull() (graph.Item, bool) {
	ie.mu.Lock()
	for len(ie.queue) == 0 && !ie.eos && !ie.aborted {
		ie.cond.Wait()
	}
	if ie.aborted || len(ie.queue) == 0 {
		ie.mu.Unlock()
		return graph.Item{}, false
	}
	it := ie.queue[0]
	ie.queue[0] = graph.Item{}
	ie.queue = ie.queue[1:]
	ie.mu.Unlock()
	return it, true
}

// ack grants a credit for one consumed item, batched to a quarter of
// the window so the return path is not one message per pixel.
//
// The flush points MUST be a deterministic function of the consumption
// count alone (every batch-th ack, nothing else): the frontend's
// partition recovery swallows exactly the credits the dead instance had
// flushed before re-crediting the producer, and a reopened instance
// replaying the same stream reaches the same flush boundaries — so the
// swallow debt always drains to zero. A timing-dependent flush (e.g.
// on queue drain) would let the old instance flush further than its
// replacement ever does at the same consumption point, wedging the
// recovery.
func (ie *inEdge) ack() {
	ie.mu.Lock()
	ie.pending++
	batch := ie.credit / 4
	if batch < 1 {
		batch = 1
	}
	if ie.pending < batch || ie.aborted {
		ie.mu.Unlock()
		return
	}
	n := ie.pending
	ie.pending = 0
	ie.mu.Unlock()
	ie.s.conn.send(&wire.EdgeCredit{SID: ie.s.sid, Edge: ie.id, N: uint32(n)})
}

func (ie *inEdge) abort() {
	ie.mu.Lock()
	if ie.aborted {
		ie.mu.Unlock()
		return
	}
	ie.aborted = true
	queue := ie.queue
	ie.queue = nil
	ie.cond.Broadcast()
	ie.mu.Unlock()
	for _, it := range queue {
		if !it.IsToken {
			it.Win.Release()
		}
	}
}

// outEdge is the producing end of a cut edge: the boundary sink's Push
// blocks for a credit and queues the item; a sender goroutine batches
// whatever accumulated into EdgeFrames, so the edge naturally coalesces
// under load without adding latency when idle.
type outEdge struct {
	s  *workerSession
	id uint32

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []wire.Item
	credits int
	closed  bool // end-of-stream requested by the sink
	aborted bool
	// skip discards the first N produced items after a reopen: the dead
	// instance already shipped them, so re-emitting would duplicate the
	// consumer's stream. Skipped items consume no credits — the initial
	// credit window already accounts for the in-flight suffix.
	skip uint64

	// senderDone closes when the sender goroutine exits — after the
	// end-of-stream frame is on the wire (or the edge aborted). The
	// close path waits on it so SessionClosed never overtakes a cut
	// edge's final frames on the connection.
	senderDone chan struct{}
}

func newOutEdge(s *workerSession, spec wire.EdgeSpec) *outEdge {
	oe := &outEdge{s: s, id: spec.ID, credits: int(spec.Credit), senderDone: make(chan struct{})}
	oe.cond = sync.NewCond(&oe.mu)
	return oe
}

// push takes ownership of the item: queued for the wire, or released
// immediately once the edge is aborted so the partition keeps draining.
func (oe *outEdge) push(it graph.Item) {
	oe.mu.Lock()
	if oe.skip > 0 {
		oe.skip--
		oe.mu.Unlock()
		if !it.IsToken {
			it.Win.Release()
		}
		return
	}
	for oe.credits <= 0 && !oe.aborted {
		oe.cond.Wait()
	}
	if oe.aborted {
		oe.mu.Unlock()
		if !it.IsToken {
			it.Win.Release()
		}
		return
	}
	oe.credits--
	oe.queue = append(oe.queue, wire.Item{
		IsToken: it.IsToken, Win: it.Win, Tok: it.Tok,
		B: wire.Batch{N: it.B.N, Sx: it.B.Sx, Bw: it.B.Bw},
	})
	oe.cond.Broadcast()
	oe.mu.Unlock()
}

// eos marks the stream complete; the sender flushes the tail and then
// announces end-of-stream to the peer.
func (oe *outEdge) eos() {
	oe.mu.Lock()
	oe.closed = true
	oe.cond.Broadcast()
	oe.mu.Unlock()
}

func (oe *outEdge) addCredits(n int) {
	oe.mu.Lock()
	oe.credits += n
	oe.cond.Broadcast()
	oe.mu.Unlock()
}

func (oe *outEdge) abort() {
	oe.mu.Lock()
	if oe.aborted {
		oe.mu.Unlock()
		return
	}
	oe.aborted = true
	queue := oe.queue
	oe.queue = nil
	oe.cond.Broadcast()
	oe.mu.Unlock()
	releaseWireItems(queue)
}

// sender drains the queue into EdgeFrames. Encoded windows are
// released after the write — the wire copies their bytes.
func (oe *outEdge) sender() {
	defer close(oe.senderDone)
	for {
		oe.mu.Lock()
		for len(oe.queue) == 0 && !oe.closed && !oe.aborted {
			oe.cond.Wait()
		}
		if oe.aborted {
			oe.mu.Unlock()
			return
		}
		batch := oe.queue
		if len(batch) > edgeBatchItems {
			batch = batch[:edgeBatchItems]
		}
		oe.queue = oe.queue[len(batch):]
		done := oe.closed && len(oe.queue) == 0
		oe.mu.Unlock()
		if len(batch) > 0 || done {
			oe.s.conn.send(&wire.EdgeFrame{SID: oe.s.sid, Edge: oe.id, EOS: done, Items: batch})
			releaseWireItems(batch)
		}
		if done {
			return
		}
	}
}

// drainAndClosePartition is the partition variant of drainAndClose:
// stop the feeds, then let the pipeline run dry naturally — boundary
// sources end on peer EOS (or abort), every in-flight window flows to
// a collector result, a sinkhole, or normal consumption, and the
// collector exits once the runtime winds down. Only a wedged drain
// after an abort escalates to a hard runtime stop; the graceful path
// waits indefinitely (the dispatcher's close timeout escalates to an
// abort from outside if the session never drains).
func (s *workerSession) drainAndClosePartition(report bool) {
	s.qmu.Lock()
	if !s.closing {
		s.closing = true
		close(s.feedq)
	}
	s.qmu.Unlock()
	<-s.feederDone
	s.rt.Finish()

	abortc := s.abortc
	var watchdog <-chan time.Time
	for waiting := true; waiting; {
		select {
		case <-s.collectorDone:
			waiting = false
		case <-abortc:
			abortc = nil
			s.abortEdges()
			t := time.NewTimer(partitionAbortGrace)
			defer t.Stop()
			watchdog = t.C
		case <-watchdog:
			watchdog = nil
			s.rt.Abort(errors.New("cluster: partition drain wedged"))
		}
	}
	s.rt.Close()

	// The collector and the edge senders are separate goroutines; wait
	// for every sender to flush its end-of-stream frame so SessionClosed
	// is the last thing this session puts on the wire. The dispatcher
	// deregisters the partition on SessionClosed — an EOS frame behind
	// it would be dropped and wedge the consuming partition's drain.
	// Bounded: the runtime is down, so every sink has signalled
	// end-of-stream (or the edge aborted) and the senders exit on their
	// own.
	for _, oe := range s.outEdges {
		<-oe.senderDone
	}

	if s.ttl != nil {
		s.ttl.Stop()
	}
	if report {
		msg, _ := s.failed()
		s.conn.send(&wire.SessionClosed{SID: s.sid, Completed: s.collected.Load(), Err: msg})
	}
	s.conn.removeSession(s.sid)
}
