package kernel

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
)

// Cost model constants shared by the kernel library. Cycle counts
// follow the shapes the paper registers in its examples (Figures 6, 7):
// a fixed method overhead plus a per-element term.
const (
	methodOverhead = 10
	convPerElem    = 3
	medianPerElem  = 6
	subtractCycles = 8
	gainCycles     = 4
	bayerCycles    = 60
	fsmPerItem     = 2
)

// Convolution builds a k×k convolution kernel following the paper's
// Figure 6: a windowed data input "in", a replicated coefficient input
// "coeff" with its own loadCoeff method, and a 1×1 output "out". The
// two methods share the kernel-private coefficient state.
//
// The data input accepts row batches: a span item carrying a whole row
// of overlapping windows is convolved in one firing with dense
// per-coefficient row loops (one multiply-accumulate sweep per tap over
// a contiguous typed span), and the 1×1 results leave as one batched
// row. Per-output accumulation order matches the scalar path exactly,
// so scalar and batched runs are byte-identical.
func Convolution(name string, k int) *graph.Node {
	if k < 1 || k%2 == 0 {
		panic(fmt.Sprintf("kernel: convolution size %d must be odd and positive", k))
	}
	n := graph.NewNode(name, graph.KindKernel)
	half := int64(k / 2)
	n.CreateInput("in", geom.Sz(k, k), geom.St(1, 1), geom.Off(half, half))
	coeff := n.CreateInput("coeff", geom.Sz(k, k), geom.St(k, k), geom.Off(half, half))
	coeff.Replicated = true
	n.CreateOutput("out", geom.Sz(1, 1), geom.St(1, 1))

	n.RegisterMethod("runConvolve", int64(methodOverhead+convPerElem*k*k), int64(2*k*k))
	n.RegisterMethodInput("runConvolve", "in")
	n.RegisterMethodOutput("runConvolve", "out")

	n.RegisterMethod("loadCoeff", int64(methodOverhead+2*k*k), int64(k*k))
	n.RegisterMethodInput("loadCoeff", "coeff")

	n.Attrs["ktype"] = "convolution"
	n.Attrs["kparams"] = fmt.Sprintf("%d", k)
	n.Behavior = &convBehavior{k: k}
	return n
}

type convBehavior struct {
	k int
	// flat holds the coefficients pre-flipped into tap order:
	// flat[ky*k+kx] multiplies input sample (kx,ky), matching the
	// convolution's coordinate flip. flat32 is its float32 twin for the
	// f32 data path.
	flat   []float64
	flat32 []float32
	acc    []float64
	acc32  []float32
}

func (b *convBehavior) Clone() graph.Behavior { return &convBehavior{k: b.k} }

// AcceptsBatch implements graph.BatchAware: windows arrive in row spans.
func (b *convBehavior) AcceptsBatch(input string) bool { return input == "in" }

// ElemAccepts implements graph.ElemTyped: the multiply-accumulate runs
// natively on float rows only, so integer streams get a widening
// conversion inserted by the compiler. The replicated coefficient input
// loads through promotion and accepts any kind.
func (b *convBehavior) ElemAccepts(input string, k frame.Kind) bool {
	if input != "in" {
		return true
	}
	return k == frame.F64 || k == frame.F32
}

// ElemOut implements graph.ElemTyped: f32 windows produce f32 sums,
// everything else float64.
func (b *convBehavior) ElemOut(output string, in frame.Kind) frame.Kind {
	if in == frame.F32 {
		return frame.F32
	}
	return frame.F64
}

func (b *convBehavior) Invoke(method string, ctx graph.ExecContext) error {
	switch method {
	case "loadCoeff":
		c := ctx.Input("coeff")
		k := b.k
		if len(b.flat) != k*k {
			b.flat = make([]float64, k*k)
			b.flat32 = make([]float32, k*k)
		}
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				v := c.At(k-kx-1, k-ky-1)
				b.flat[ky*k+kx] = v
				b.flat32[ky*k+kx] = float32(v)
			}
		}
		return nil
	case "runConvolve":
		if b.flat == nil {
			// Coefficients not loaded yet; the runtime's configuration
			// barrier prevents this, so reaching here is a bug.
			return fmt.Errorf("kernel: %dx%d convolution fired before loadCoeff", b.k, b.k)
		}
		in := ctx.Input("in")
		n, sx := 1, 1
		bc, _ := ctx.(graph.BatchContext)
		if bc != nil {
			if bt := bc.Batch("in"); bt.IsBatch() {
				n, sx = int(bt.N), int(bt.Sx)
			}
		}
		var out frame.Window
		switch in.Kind {
		case frame.F32:
			out = b.convolveF32(in, n, sx)
		default:
			out = b.convolveF64(in, n, sx)
		}
		if n > 1 {
			bc.EmitBatch("out", out, graph.Batch{N: int32(n), Sx: 1, Bw: 1})
		} else {
			ctx.Emit("out", out)
		}
		return nil
	default:
		return fmt.Errorf("kernel: convolution has no method %q", method)
	}
}

// convolveF64 convolves the n overlapping k×k windows packed in the
// span (window j starts at column j*sx) and returns their results as a
// dense n×1 window. Accumulation visits taps in (ky,kx) order for every
// output, the same order as the original scalar loop, so results are
// byte-identical regardless of batching.
func (b *convBehavior) convolveF64(in frame.Window, n, sx int) frame.Window {
	k := b.k
	if cap(b.acc) < n {
		b.acc = make([]float64, n)
	}
	acc := b.acc[:n]
	for j := range acc {
		acc[j] = 0
	}
	if in.Kind == frame.F64 {
		for ky := 0; ky < k; ky++ {
			row := in.Row(ky)
			for kx := 0; kx < k; kx++ {
				c := b.flat[ky*k+kx]
				if sx == 1 {
					row2 := row[kx : kx+n]
					for j, v := range row2 {
						acc[j] += v * c
					}
				} else {
					for j := range acc {
						acc[j] += row[j*sx+kx] * c
					}
				}
			}
		}
	} else {
		// Generic strided fallback for element kinds without a dense f64
		// row (u8 spans reaching a conv without a widening conversion).
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				c := b.flat[ky*k+kx]
				for j := range acc {
					acc[j] += in.At(j*sx+kx, ky) * c
				}
			}
		}
	}
	out := frame.AllocKind(frame.F64, n, 1)
	copy(out.Row(0), acc)
	return out
}

// convolveF32 is the float32 twin of convolveF64: f32 taps, f32
// accumulators, f32 results.
func (b *convBehavior) convolveF32(in frame.Window, n, sx int) frame.Window {
	k := b.k
	if cap(b.acc32) < n {
		b.acc32 = make([]float32, n)
	}
	acc := b.acc32[:n]
	for j := range acc {
		acc[j] = 0
	}
	for ky := 0; ky < k; ky++ {
		row := in.RowF32(ky)
		for kx := 0; kx < k; kx++ {
			c := b.flat32[ky*k+kx]
			if sx == 1 {
				row2 := row[kx : kx+n]
				for j, v := range row2 {
					acc[j] += v * c
				}
			} else {
				for j := range acc {
					acc[j] += row[j*sx+kx] * c
				}
			}
		}
	}
	out := frame.AllocKind(frame.F32, n, 1)
	copy(out.RowF32(0), acc)
	return out
}
