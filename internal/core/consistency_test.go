package core

import (
	"testing"

	"blockpar/internal/apps"
	"blockpar/internal/graph"
	"blockpar/internal/runtime"
)

// TestAnalysisPredictsRuntimeFirings is the analysis↔execution
// consistency property: for every compiled suite benchmark, the
// data-flow analysis' predicted per-method invocation counts (§III-A's
// iteration sizes) must equal the functional runtime's actual firing
// counts, method by method, for every generic kernel in the transformed
// graph. A mismatch means the static model and the execution semantics
// disagree — exactly the kind of drift that would silently break the
// real-time guarantees.
func TestAnalysisPredictsRuntimeFirings(t *testing.T) {
	const frames = 2
	for _, b := range apps.Figure13Suite() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			c, err := Compile(b.App.Graph, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			res, err := runtime.Run(c.Graph, runtime.Options{Frames: frames, Sources: b.App.Sources})
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range c.Graph.Nodes() {
				if _, isRunner := graph.RunnerBehavior(n); isRunner {
					continue // FSM kernels fire per their own loops
				}
				if n.Kind != graph.KindKernel {
					continue
				}
				ni := c.Analysis.NodeInfoOf(n)
				actual := res.Firings[n.Name()]
				for method, mi := range ni.Methods {
					want := mi.Invocations() * frames
					if got := actual[method]; got != want {
						t.Errorf("%s %s.%s: runtime fired %d times, analysis predicted %d",
							b.ID, n.Name(), method, got, want)
					}
				}
			}
		})
	}
}
