// Package machine models the target many-core architecture: an array
// of identical processing elements (PEs), each with a clock rate, local
// memory, and per-word costs for reading and writing kernel inputs and
// outputs. The paper's analyses need exactly this much — the degree of
// parallelism is the required cycles/sec divided by what one PE
// provides (§IV), and buffers split when they exceed a PE's storage
// (§IV-C).
package machine

import "fmt"

// PE describes one processing element.
type PE struct {
	// CyclesPerSec is the PE clock rate.
	CyclesPerSec int64
	// MemWords is the local storage in data words.
	MemWords int64
	// ReadCost and WriteCost are cycles per word moved through kernel
	// inputs/outputs (the paper's simulator accounts "data access
	// time" and "buffer transfer time" separately from execution).
	ReadCost  int64
	WriteCost int64
}

// Machine is a pool of identical PEs. MaxPEs of zero means unbounded
// (the paper sizes the application first and counts how many PEs it
// needs).
type Machine struct {
	Name   string
	PE     PE
	MaxPEs int
}

// Validate checks the machine description.
func (m Machine) Validate() error {
	if m.PE.CyclesPerSec <= 0 {
		return fmt.Errorf("machine: PE clock must be positive, got %d", m.PE.CyclesPerSec)
	}
	if m.PE.MemWords <= 0 {
		return fmt.Errorf("machine: PE memory must be positive, got %d", m.PE.MemWords)
	}
	if m.PE.ReadCost < 0 || m.PE.WriteCost < 0 {
		return fmt.Errorf("machine: negative access costs")
	}
	return nil
}

// Default returns the reference machine used by the experiments: a
// 200 MHz PE with 4K words of local store and 1-cycle-per-word port
// access, loosely shaped like the tiled embedded many-cores the paper
// targets.
func Default() Machine {
	return Machine{
		Name: "ref-200mhz-4kw",
		PE: PE{
			CyclesPerSec: 200_000_000,
			MemWords:     4096,
			ReadCost:     1,
			WriteCost:    1,
		},
	}
}

// Embedded returns the machine the paper-style experiments run on: a
// 20 MHz PE with 768 words of local store, calibrated so the benchmark
// suite's compute kernels parallelize a few ways at "fast" sample rates
// and its wide-frame line buffers exceed one PE's storage (DESIGN.md
// §4, Figures 11-13).
func Embedded() Machine {
	return Machine{
		Name: "embedded-20mhz-768w",
		PE: PE{
			CyclesPerSec: 20_000_000,
			MemWords:     768,
			ReadCost:     1,
			WriteCost:    1,
		},
	}
}

// Small returns a deliberately weak machine (low clock, little memory)
// used by tests to force high degrees of parallelism and buffer
// splitting at tiny problem sizes.
func Small() Machine {
	return Machine{
		Name: "small-1mhz-256w",
		PE: PE{
			CyclesPerSec: 1_000_000,
			MemWords:     256,
			ReadCost:     1,
			WriteCost:    1,
		},
	}
}
