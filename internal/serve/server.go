package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blockpar/internal/desc"
	"blockpar/internal/frame"
	"blockpar/internal/runtime"
)

// Options tunes the server's limits.
type Options struct {
	// MaxInFlight is the default per-session bounded frame queue;
	// feeding past it yields HTTP 429 (default 8).
	MaxInFlight int
	// CollectTimeout is the default and maximum per-request deadline
	// for collecting a frame (default 30s).
	CollectTimeout time.Duration
	// MaxSessions caps concurrent sessions; opening more yields HTTP
	// 429 (default 64).
	MaxSessions int
	// Executor selects the runtime engine for every session the
	// server opens (default: one goroutine per kernel); Workers sizes
	// the worker-pool engine when ExecWorkers is selected.
	Executor runtime.ExecutorKind
	Workers  int
	// Backend decides where sessions execute: nil runs them in-process
	// with the Executor/Workers settings above; a cluster dispatcher
	// places them on remote bpworker processes.
	Backend Backend
	// SessionDeadline, when positive, bounds every session's total
	// wall-clock lifetime. It propagates through the backend (the
	// cluster dispatcher bounds failover with it and ships it to the
	// worker) so stuck sessions cancel cleanly. Zero means unbounded.
	SessionDeadline time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 8
	}
	if o.CollectTimeout <= 0 {
		o.CollectTimeout = 30 * time.Second
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 64
	}
	return o
}

// Server hosts the registry's compiled pipelines over HTTP. All state
// is in-process; Handler is safe for concurrent use and Shutdown
// drains every session's in-flight frames before returning.
type Server struct {
	reg     *Registry
	opts    Options
	backend Backend
	metrics *metrics
	mux     *http.ServeMux
	started time.Time

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int64
	closed   bool
}

// NewServer builds a server over an already-populated registry.
func NewServer(reg *Registry, opts Options) *Server {
	s := &Server{
		reg:      reg,
		opts:     opts.withDefaults(),
		metrics:  newMetrics(),
		mux:      http.NewServeMux(),
		started:  time.Now(),
		sessions: make(map[string]*session),
	}
	s.backend = s.opts.Backend
	if s.backend == nil {
		s.backend = localBackend{executor: s.opts.Executor, workers: s.opts.Workers}
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /healthz/live", s.handleLiveness)
	s.mux.HandleFunc("GET /healthz/ready", s.handleReadiness)
	s.mux.HandleFunc("GET /pipelines", s.handlePipelines)
	s.mux.HandleFunc("POST /pipelines", s.handleAddPipeline)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /sessions", s.handleOpenSession)
	s.mux.HandleFunc("GET /sessions", s.handleListSessions)
	s.mux.HandleFunc("DELETE /sessions/{id}", s.handleCloseSession)
	s.mux.HandleFunc("POST /sessions/{id}/frames", s.handleFeed)
	s.mux.HandleFunc("POST /sessions/{id}/collect", s.handleCollect)
	s.mux.HandleFunc("POST /sessions/{id}/process", s.handleProcess)
	s.mux.HandleFunc("POST /drain-worker", s.handleDrainWorker)
	return s
}

// WorkerDrainer is implemented by backends that can migrate one
// worker's sessions to survivors on demand — the cluster dispatcher.
// The /drain-worker admin endpoint routes through it.
type WorkerDrainer interface {
	DrainWorker(name string) error
}

// handleDrainWorker quiesces one cluster worker: no further placements
// land on it and its resident sessions live-migrate to survivors. The
// worker name comes from the "worker" query or form parameter (the
// worker's address in static-list mode).
func (s *Server) handleDrainWorker(w http.ResponseWriter, r *http.Request) {
	d, ok := s.backend.(WorkerDrainer)
	if !ok {
		writeErr(w, http.StatusNotImplemented, "backend cannot drain workers")
		return
	}
	name := r.FormValue("worker")
	if name == "" {
		writeErr(w, http.StatusBadRequest, "missing worker parameter")
		return
	}
	if err := d.DrainWorker(name); err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"draining": name})
}

// Handler returns the server's HTTP handler with panic recovery: a
// panicking handler answers 500 and the process keeps serving.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.panics.Add(1)
				writeErr(w, http.StatusInternalServerError,
					fmt.Sprintf("internal error: %v", rec))
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// Shutdown stops accepting new work and gracefully drains: every
// session's in-flight frames are processed to completion before its
// kernel goroutines exit. The context bounds the wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		if sess != nil {
			sessions = append(sessions, sess)
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	var drained atomic.Int64
	go func() {
		defer close(done)
		for _, sess := range sessions {
			s.removeSession(sess)
			drained.Add(1)
		}
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Count what the interrupted drain leaves behind so operators
		// (and the -drain-timeout exit code) can tell a clean timeout
		// from abandoned work. The count walks the captured slice, not
		// the table: removeSession drops a session from the table before
		// its (possibly stuck) close finishes.
		var abandoned, open int64
		for _, sess := range sessions[drained.Load():] {
			open++
			abandoned += sess.rt.InFlight()
		}
		return fmt.Errorf("serve: shutdown drain interrupted: %w (%d sessions with %d in-flight frames abandoned)",
			ctx.Err(), open, abandoned)
	}
}

// removeSession closes a session's runtime (draining fed frames) and
// drops it from the table. Safe to call twice.
func (s *Server) removeSession(sess *session) {
	s.mu.Lock()
	_, present := s.sessions[sess.id]
	delete(s.sessions, sess.id)
	s.mu.Unlock()
	sess.rt.Close()
	if present {
		s.metrics.sessionsClosed.Add(1)
	}
}

func (s *Server) session(id string) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	// A nil entry is a slot reserved by a still-opening session.
	return sess, ok && sess != nil
}

// ---- handlers ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	open := len(s.sessions)
	s.mu.Unlock()
	status, code := "ok", http.StatusOK
	if closed {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":    status,
		"uptime_s":  time.Since(s.started).Seconds(),
		"pipelines": len(s.reg.List()),
		"sessions":  open,
	})
}

// handleLiveness answers 200 whenever the process is serving requests,
// draining included — a draining server is alive, just not accepting
// work. Restart-on-liveness probes must point here, not at readiness.
func (s *Server) handleLiveness(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.started).Seconds(),
	})
}

// handleReadiness reports whether the server should receive new
// sessions: "ok", "degraded" (capacity reduced — some cluster workers
// down or breaker-open — but placement still possible, answered 200 so
// load balancers keep routing), or 503 for draining/unavailable.
func (s *Server) handleReadiness(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	open := len(s.sessions)
	s.mu.Unlock()
	rd := Readiness{Status: "ok"}
	if rr, ok := s.backend.(ReadinessReporter); ok {
		rd = rr.Readiness()
	}
	if closed {
		rd = Readiness{Status: "draining", Detail: "server is draining"}
	}
	code := http.StatusOK
	if rd.Status != "ok" && rd.Status != "degraded" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":   rd.Status,
		"detail":   rd.Detail,
		"sessions": open,
	})
}

// pipelineInfo is the /pipelines JSON shape: the compiled inventory
// with its analysis-derived load summary.
type pipelineInfo struct {
	ID           string   `json:"id"`
	Name         string   `json:"name"`
	Source       string   `json:"source"`
	Nodes        int      `json:"nodes"`
	CyclesPerSec float64  `json:"cycles_per_sec"`
	MemoryWords  int64    `json:"memory_words"`
	CompileMs    float64  `json:"compile_ms"`
	Inputs       []ioInfo `json:"inputs"`
	Outputs      []string `json:"outputs"`
}

type ioInfo struct {
	Name  string `json:"name"`
	Frame [2]int `json:"frame"`
	Rate  string `json:"rate"`
}

func (s *Server) handlePipelines(w http.ResponseWriter, r *http.Request) {
	var out []pipelineInfo
	for _, p := range s.reg.List() {
		info := pipelineInfo{
			ID:           p.ID,
			Name:         p.Name,
			Source:       p.Source,
			Nodes:        p.Nodes,
			CyclesPerSec: p.CyclesPerSec,
			MemoryWords:  p.MemoryWords,
			CompileMs:    float64(p.CompileTime) / float64(time.Millisecond),
		}
		for _, n := range p.graph.Inputs() {
			info.Inputs = append(info.Inputs, ioInfo{
				Name:  n.Name(),
				Frame: [2]int{n.FrameSize.W, n.FrameSize.H},
				Rate:  desc.FormatRate(n.Rate),
			})
		}
		for _, n := range p.graph.Outputs() {
			info.Outputs = append(info.Outputs, n.Name())
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAddPipeline(w http.ResponseWriter, r *http.Request) {
	if s.isClosed() {
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	p, err := s.reg.AddJSON(data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"pipeline":   p.ID,
		"nodes":      p.Nodes,
		"compile_ms": float64(p.CompileTime) / float64(time.Millisecond),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	open := len(s.sessions)
	var queueDepth int64
	for _, sess := range s.sessions {
		if sess != nil {
			queueDepth += sess.rt.InFlight()
		}
	}
	s.mu.Unlock()
	pool := frame.Stats()
	payload := map[string]any{
		"uptime_s":        time.Since(s.started).Seconds(),
		"frames_in":       s.metrics.framesIn.Load(),
		"frames_out":      s.metrics.framesOut.Load(),
		"rejected_429":    s.metrics.rejected.Load(),
		"shed_503":        s.metrics.shed.Load(),
		"sessions_open":   open,
		"sessions_opened": s.metrics.sessionsOpened.Load(),
		"sessions_closed": s.metrics.sessionsClosed.Load(),
		"queue_depth":     queueDepth,
		"handler_panics":  s.metrics.panics.Load(),
		"session_errors":  s.metrics.sessionErrors.Load(),
		"pipelines":       s.metrics.latencySnapshot(),
		"pool": map[string]any{
			"gets":         pool.Gets,
			"hits":         pool.Hits,
			"puts":         pool.Puts,
			"hit_rate":     pool.HitRate(),
			"buffers_live": pool.Live,
			"pooled_bytes": pool.PooledBytes,
		},
	}
	if sr, ok := s.backend.(StatsReporter); ok {
		payload["cluster"] = sr.BackendStats()
	}
	writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleOpenSession(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Pipeline    string `json:"pipeline"`
		MaxInFlight int    `json:"maxInFlight"`
		// Key pins ring placement on registered-fleet backends, so any
		// frontend routes the same key to the same worker.
		Key string `json:"key"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	p, ok := s.reg.Get(req.Pipeline)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown pipeline %q", req.Pipeline))
		return
	}
	maxInFlight := req.MaxInFlight
	if maxInFlight <= 0 || maxInFlight > 1024 {
		maxInFlight = s.opts.MaxInFlight
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests,
			fmt.Sprintf("session limit %d reached", s.opts.MaxSessions))
		return
	}
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	// Reserve the slot before the (cheap but not free) graph clone.
	s.sessions[id] = nil
	s.mu.Unlock()

	rt, err := s.backend.Open(p, OpenOptions{
		MaxInFlight: maxInFlight,
		Deadline:    s.opts.SessionDeadline,
		Key:         req.Key,
	})
	if err != nil {
		s.mu.Lock()
		delete(s.sessions, id)
		s.mu.Unlock()
		if errors.Is(err, ErrOverloaded) {
			// Admission control: the fleet is healthy but its projected
			// cycles/sec is spoken for — same retry contract as a full
			// frame queue.
			s.metrics.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, err.Error())
			return
		}
		if errors.Is(err, ErrUnavailable) || errors.Is(err, ErrSessionLost) {
			s.metrics.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	sess := &session{
		id:          id,
		pipeline:    p,
		rt:          rt,
		maxInFlight: maxInFlight,
		created:     time.Now(),
	}
	s.mu.Lock()
	s.sessions[id] = sess
	closed := s.closed
	s.mu.Unlock()
	if closed {
		// Shutdown raced with us; take the session back down.
		s.removeSession(sess)
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.metrics.sessionsOpened.Add(1)
	writeJSON(w, http.StatusCreated, map[string]any{
		"session":     id,
		"pipeline":    p.ID,
		"maxInFlight": maxInFlight,
	})
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]map[string]any, 0, len(s.sessions))
	for _, sess := range s.sessions {
		if sess == nil {
			continue
		}
		out = append(out, map[string]any{
			"session":   sess.id,
			"pipeline":  sess.pipeline.ID,
			"fed":       sess.rt.Fed(),
			"completed": sess.rt.Completed(),
			"inFlight":  sess.rt.InFlight(),
			"created":   sess.created.UTC().Format(time.RFC3339),
		})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	s.removeSession(sess)
	writeJSON(w, http.StatusOK, map[string]any{
		"session":   sess.id,
		"completed": sess.rt.Completed(),
	})
}

func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	if s.isClosed() {
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	inputs, code, err := readFrameBody(r)
	if err != nil {
		writeErr(w, code, err.Error())
		return
	}
	idx, err := sess.feed(inputs)
	if err != nil {
		s.feedError(w, err)
		return
	}
	s.metrics.framesIn.Add(1)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"frame":    idx,
		"inFlight": sess.rt.InFlight(),
	})
}

func (s *Server) handleCollect(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	s.collectAndReply(w, r, sess)
}

func (s *Server) handleProcess(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	if s.isClosed() {
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	inputs, code, err := readFrameBody(r)
	if err != nil {
		writeErr(w, code, err.Error())
		return
	}
	// Serialize feed+collect pairs so each caller gets the frame it fed.
	sess.procMu.Lock()
	defer sess.procMu.Unlock()
	if _, err := sess.feed(inputs); err != nil {
		s.feedError(w, err)
		return
	}
	s.metrics.framesIn.Add(1)
	s.collectAndReply(w, r, sess)
}

func (s *Server) collectAndReply(w http.ResponseWriter, r *http.Request, sess *session) {
	timeout := s.opts.CollectTimeout
	if q := r.URL.Query().Get("timeout"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad timeout %q", q))
			return
		}
		if d < timeout {
			timeout = d
		}
	}
	res, lat, err := sess.collect(timeout)
	if err != nil {
		switch {
		case errors.Is(err, ErrSessionLost), errors.Is(err, ErrUnavailable):
			s.metrics.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, runtime.ErrSessionClosed):
			writeErr(w, http.StatusConflict, err.Error())
		case isTimeout(err):
			writeErr(w, http.StatusGatewayTimeout, err.Error())
		default:
			s.metrics.sessionErrors.Add(1)
			writeErr(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	s.metrics.framesOut.Add(1)
	if lat > 0 {
		s.metrics.latencyFor(sess.pipeline.ID).add(lat)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"frame":      res.Seq,
		"latency_ms": float64(lat) / float64(time.Millisecond),
		"outputs":    encodeOutputs(res.Outputs),
	})
	releaseOutputs(res.Outputs)
}

// feedError maps a runtime feed failure onto an HTTP status: queue
// saturation is backpressure (429 + Retry-After), a lost or shed
// session is transient capacity loss (503 + Retry-After), everything
// else a caller mistake or server error.
func (s *Server) feedError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, runtime.ErrQueueFull):
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrSessionLost), errors.Is(err, ErrUnavailable):
		s.metrics.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, runtime.ErrBadFrame):
		writeErr(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, runtime.ErrSessionClosed):
		writeErr(w, http.StatusConflict, err.Error())
	default:
		s.metrics.sessionErrors.Add(1)
		writeErr(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// ---- plumbing ----

// isTimeout matches the runtime's collect-deadline error.
func isTimeout(err error) bool {
	return err != nil && strings.Contains(err.Error(), "timed out")
}

// readFrameBody decodes an optional {"inputs": {...}} request body: an
// empty body means "generate every input from the pipeline's sources".
func readFrameBody(r *http.Request) (map[string]frame.Window, int, error) {
	data, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if len(data) == 0 {
		return nil, 0, nil
	}
	var req struct {
		Inputs map[string]WindowJSON `json:"inputs"`
	}
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)
	}
	inputs, err := decodeInputs(req.Inputs)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	return inputs, 0, nil
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return fmt.Errorf("empty request body")
		}
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
