package frame

// Generators produce deterministic synthetic frames. The paper's inputs
// are live camera/sensor streams; the analyses only depend on sizes and
// rates, so deterministic patterns are sufficient and make the
// functional-equivalence tests exact (see DESIGN.md §2).

// Generator produces the frame with the given sequence number.
type Generator func(seq int64, w, h int) Frame

// Gradient produces a diagonal gradient that also varies per frame, so
// consecutive frames are distinguishable: pix = x + 2y + 3*seq.
func Gradient(seq int64, w, h int) Frame {
	f := NewWindow(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Set(x, y, float64(x)+2*float64(y)+3*float64(seq))
		}
	}
	return f
}

// Checker produces a two-level checkerboard with per-frame offset,
// exercising median filters with genuine order statistics.
func Checker(seq int64, w, h int) Frame {
	f := NewWindow(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := float64((x + y + int(seq)) % 2 * 100)
			f.Set(x, y, v+float64(x%5))
		}
	}
	return f
}

// LCG produces pseudo-random but fully deterministic frames using a
// linear congruential generator seeded by the frame number. Values are
// in [0, 256).
func LCG(seq int64, w, h int) Frame {
	f := NewWindow(w, h)
	state := uint64(seq)*2862933555777941757 + 3037000493
	for i := range f.Pix {
		state = state*6364136223846793005 + 1442695040888963407
		f.Pix[i] = float64((state >> 33) % 256)
	}
	return f
}

// Constant produces a flat frame of value v.
func Constant(v float64) Generator {
	return func(seq int64, w, h int) Frame {
		f := NewWindow(w, h)
		for i := range f.Pix {
			f.Pix[i] = v
		}
		return f
	}
}

// Typed adapts a generator to produce frames of the given element
// kind. Samples are quantized through the kind's narrowing rule
// (Window.Set), so a Typed(U8, g) source and the f64 stream obtained by
// promoting its frames carry bit-identical values — which is what lets
// the conformance harness diff a u8 pipeline against the f64 oracle
// exactly: both sides see the same quantized scene.
func Typed(k Kind, g Generator) Generator {
	if k == F64 {
		return g
	}
	return func(seq int64, w, h int) Frame {
		src := g(seq, w, h)
		out := NewWindowKind(k, w, h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				out.Set(x, y, src.At(x, y))
			}
		}
		return out
	}
}

// Bayer produces a synthetic Bayer-mosaic frame in RGGB layout: each
// pixel holds only the color channel its filter position admits,
// derived from a smooth underlying scene so demosaicing is meaningful.
func Bayer(seq int64, w, h int) Frame {
	f := NewWindow(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := float64(x) + float64(seq)
			g := float64(y) * 2
			b := float64(x+y) / 2
			var v float64
			switch {
			case y%2 == 0 && x%2 == 0:
				v = r
			case y%2 == 0 && x%2 == 1:
				v = g
			case y%2 == 1 && x%2 == 0:
				v = g
			default:
				v = b
			}
			f.Set(x, y, v)
		}
	}
	return f
}
