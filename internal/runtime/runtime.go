// Package runtime executes block-parallel application graphs
// functionally: one goroutine per kernel instance, channels as the
// stream FIFOs, control tokens in-band. It is the semantic reference
// for the system — every compiler transformation is verified by running
// the transformed graph here and comparing with the untransformed
// golden output (DESIGN.md §5).
//
// Two execution styles exist, mirroring graph.Behavior:
//
//   - Invoker kernels are driven by the generic method-trigger loop:
//     a method fires when every trigger input's queue head matches
//     (data for data triggers, the right token for token triggers).
//     Unhandled control tokens are forwarded in order to the outputs of
//     the methods fed by that input, once the token has arrived on all
//     of those methods' data inputs (paper §II-C).
//   - Runner kernels (buffers, splits, joins, insets, pads, feedback)
//     drive their own stream FSM.
//
// Replicated inputs act as a configuration barrier: a kernel's data
// methods do not fire until every replicated input has delivered at
// least one item, making coefficient/bin loading deterministic.
package runtime

import (
	"fmt"
	"sync"
	"time"

	"blockpar/internal/frame"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// Options configures a functional run.
type Options struct {
	// Frames is how many input frames to generate (default 1).
	Frames int
	// Timeout aborts the run if the outputs have not completed within
	// this wall-clock duration — a watchdog against misbehaving custom
	// kernels deadlocking the pipeline. Zero means no watchdog.
	Timeout time.Duration
	// ChannelCap overrides the per-node inbox capacity. Zero means
	// automatic: generous enough to absorb the pipeline skew of
	// windowed diamonds (several input rows).
	ChannelCap int
	// Sources maps application input node names to frame generators.
	// Inputs without an entry produce frame.Gradient frames.
	Sources map[string]frame.Generator
}

// Result holds everything the application outputs produced.
type Result struct {
	// Outputs maps output node name to the full item stream received,
	// tokens included, in arrival order.
	Outputs map[string][]graph.Item
	// Firings counts method invocations per kernel (generic Invoker
	// kernels only; FSM runners drive their own loops). Used to
	// cross-check the data-flow analysis' predicted iteration counts
	// against actual execution.
	Firings map[string]map[string]int64
}

// DataWindows returns just the data windows received by the named
// output, in order.
func (r *Result) DataWindows(output string) []frame.Window {
	var out []frame.Window
	for _, it := range r.Outputs[output] {
		if !it.IsToken {
			out = append(out, it.Win)
		}
	}
	return out
}

// FrameSlices splits the named output's data windows into per-frame
// groups using the end-of-frame tokens.
func (r *Result) FrameSlices(output string) [][]frame.Window {
	var frames [][]frame.Window
	var cur []frame.Window
	for _, it := range r.Outputs[output] {
		if it.IsToken {
			if it.Tok.Kind == token.EndOfFrame {
				frames = append(frames, cur)
				cur = nil
			}
			continue
		}
		cur = append(cur, it.Win)
	}
	if len(cur) > 0 {
		frames = append(frames, cur)
	}
	return frames
}

// inMsg is one delivery into a node's inbox.
type inMsg struct {
	input string
	item  graph.Item
}

// executor wires the graph into channels and goroutines.
type executor struct {
	g    *graph.Graph
	opts Options

	inboxes map[*graph.Node]chan inMsg
	// producersLeft counts open producers per consumer node; the inbox
	// closes when it reaches zero.
	mu            sync.Mutex
	producersLeft map[*graph.Node]int

	stop     chan struct{}
	stopOnce sync.Once

	errMu sync.Mutex
	err   error

	fireMu  sync.Mutex
	firings map[string]map[string]int64

	// output collection
	outMu   sync.Mutex
	outputs map[string][]graph.Item
	// eofSeen tracks per-output EOF counts for termination.
	eofSeen map[string]int

	// Streaming mode (sessions): inputs read frames from feeds instead
	// of generating them, outputs assemble per-frame results onto ready
	// instead of accumulating the raw item stream, and node panics are
	// converted to errors so a bad kernel cannot take down the process.
	stream bool
	feeds  map[*graph.Node]chan frame.Window
	ready  chan StreamResult
	// curFrame and doneFrames hold the per-output frame assembly
	// (guarded by outMu); assembled counts completed frame sets.
	curFrame   map[string][]frame.Window
	doneFrames map[string][][]frame.Window
	assembled  int64

	wg sync.WaitGroup
}

// newExecutor validates the graph and wires inboxes; readyCap > 0
// selects streaming mode with that many buffered frame results.
func newExecutor(g *graph.Graph, opts Options, readyCap int) (*executor, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("runtime: invalid graph: %w", err)
	}
	if opts.ChannelCap <= 0 {
		maxW := 64
		for _, in := range g.Inputs() {
			if in.FrameSize.W > maxW {
				maxW = in.FrameSize.W
			}
		}
		opts.ChannelCap = 16 * maxW
	}

	ex := &executor{
		g:             g,
		opts:          opts,
		inboxes:       make(map[*graph.Node]chan inMsg),
		producersLeft: make(map[*graph.Node]int),
		stop:          make(chan struct{}),
		outputs:       make(map[string][]graph.Item),
		eofSeen:       make(map[string]int),
		firings:       make(map[string]map[string]int64),
	}
	if readyCap > 0 {
		ex.stream = true
		ex.feeds = make(map[*graph.Node]chan frame.Window)
		ex.ready = make(chan StreamResult, readyCap)
		ex.curFrame = make(map[string][]frame.Window)
		ex.doneFrames = make(map[string][][]frame.Window)
		for _, n := range g.Inputs() {
			ex.feeds[n] = make(chan frame.Window, readyCap)
		}
	}
	for _, n := range g.Nodes() {
		if n.Kind == graph.KindInput {
			continue
		}
		ex.inboxes[n] = make(chan inMsg, opts.ChannelCap)
		producers := make(map[*graph.Node]bool)
		for _, e := range g.InEdges(n) {
			producers[e.From.Node()] = true
		}
		ex.producersLeft[n] = len(producers)
	}
	return ex, nil
}

// start launches one goroutine per node and returns a channel closed
// when all of them have exited.
func (ex *executor) start() chan struct{} {
	for _, n := range ex.g.Nodes() {
		n := n
		ex.wg.Add(1)
		go func() {
			defer func() {
				if ex.stream {
					if r := recover(); r != nil {
						ex.fail(fmt.Errorf("node %q panicked: %v", n.Name(), r))
					}
				}
				// This node will produce nothing more: release consumers.
				for _, consumer := range ex.downstreamConsumers(n) {
					ex.producerDone(consumer)
				}
				ex.wg.Done()
			}()
			if err := ex.runNode(n); err != nil && err != graph.ErrHalt {
				ex.fail(fmt.Errorf("node %q: %w", n.Name(), err))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		ex.wg.Wait()
		close(done)
	}()
	return done
}

// runErr returns the first error recorded by fail, if any.
func (ex *executor) runErr() error {
	ex.errMu.Lock()
	defer ex.errMu.Unlock()
	return ex.err
}

// Run executes the graph for opts.Frames frames and returns the
// collected outputs. The graph must Validate cleanly.
func Run(g *graph.Graph, opts Options) (*Result, error) {
	if opts.Frames <= 0 {
		opts.Frames = 1
	}
	ex, err := newExecutor(g, opts, 0)
	if err != nil {
		return nil, err
	}
	done := ex.start()
	if opts.Timeout > 0 {
		select {
		case <-done:
		case <-time.After(opts.Timeout):
			ex.fail(fmt.Errorf("runtime: watchdog: outputs incomplete after %v", opts.Timeout))
			// Give unblocked goroutines a moment to notice the stop
			// signal; a kernel stuck outside Recv/Send is leaked.
			select {
			case <-done:
			case <-time.After(time.Second):
			}
		}
	} else {
		<-done
	}
	if err := ex.runErr(); err != nil {
		return nil, err
	}
	// The run only succeeded if every output saw its full frame budget
	// (a kernel that silently swallows its stream must not pass).
	for _, o := range g.Outputs() {
		if ex.eofSeen[o.Name()] < opts.Frames {
			return nil, fmt.Errorf("runtime: output %q completed %d of %d frames",
				o.Name(), ex.eofSeen[o.Name()], opts.Frames)
		}
	}
	return &Result{Outputs: ex.outputs, Firings: ex.firings}, nil
}

// recordFiring counts one method invocation for consistency checks.
func (ex *executor) recordFiring(node, method string) {
	ex.fireMu.Lock()
	m := ex.firings[node]
	if m == nil {
		m = make(map[string]int64)
		ex.firings[node] = m
	}
	m[method]++
	ex.fireMu.Unlock()
}

func (ex *executor) downstreamConsumers(n *graph.Node) []*graph.Node {
	seen := make(map[*graph.Node]bool)
	var out []*graph.Node
	for _, e := range ex.g.OutEdges(n) {
		c := e.To.Node()
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

func (ex *executor) fail(err error) {
	ex.errMu.Lock()
	if ex.err == nil {
		ex.err = err
	}
	ex.errMu.Unlock()
	ex.stopAll()
}

func (ex *executor) stopAll() {
	ex.stopOnce.Do(func() { close(ex.stop) })
}

// producerDone decrements the consumer's open-producer count. Each
// producer node calls it once per distinct consumer; a consumer node
// may be fed by several edges from the same producer, so the count is
// by edges collapsed to distinct producers at wiring time — instead we
// count distinct producers here.
func (ex *executor) producerDone(consumer *graph.Node) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	ex.producersLeft[consumer]--
	if ex.producersLeft[consumer] == 0 {
		close(ex.inboxes[consumer])
	}
}

// send delivers an item to every consumer of the given output port.
// It aborts silently once the run is stopping.
func (ex *executor) send(from *graph.Port, it graph.Item) {
	for _, e := range ex.g.EdgesFrom(from) {
		inbox := ex.inboxes[e.To.Node()]
		select {
		case inbox <- inMsg{input: e.To.Name, item: it}:
		case <-ex.stop:
			return
		}
	}
}

// recv pulls the next delivery for node n; ok is false when the inbox
// is closed and drained or the run is stopping.
func (ex *executor) recv(n *graph.Node) (inMsg, bool) {
	select {
	case msg, ok := <-ex.inboxes[n]:
		return msg, ok
	case <-ex.stop:
		// Drain without blocking so producers can finish.
		select {
		case msg, ok := <-ex.inboxes[n]:
			return msg, ok
		default:
			return inMsg{}, false
		}
	}
}

func (ex *executor) runNode(n *graph.Node) error {
	switch n.Kind {
	case graph.KindInput:
		if ex.stream {
			return ex.runInputStream(n)
		}
		return ex.runInput(n)
	case graph.KindOutput:
		if ex.stream {
			return ex.runOutputStream(n)
		}
		return ex.runOutput(n)
	}
	if r, ok := graph.RunnerBehavior(n); ok {
		ctx := &runCtx{ex: ex, node: n}
		return r.Run(ctx)
	}
	if n.Behavior == nil {
		return fmt.Errorf("runtime: node %q has no behavior", n.Name())
	}
	inv, ok := n.Behavior.(graph.Invoker)
	if !ok {
		return fmt.Errorf("runtime: node %q behavior implements neither Invoker nor Runner", n.Name())
	}
	d := newDriver(ex, n, inv)
	return d.loop()
}

// runCtx adapts the executor to graph.RunContext for Runner kernels.
type runCtx struct {
	ex      *executor
	node    *graph.Node
	pending map[string][]graph.Item
}

func (c *runCtx) Node() *graph.Node { return c.node }

func (c *runCtx) Send(output string, it graph.Item) {
	p := c.node.Output(output)
	if p == nil {
		panic(fmt.Sprintf("runtime: node %q has no output %q", c.node.Name(), output))
	}
	c.ex.send(p, it)
}

func (c *runCtx) Recv(input string) (graph.Item, bool) {
	if c.pending == nil {
		c.pending = make(map[string][]graph.Item)
	}
	if q := c.pending[input]; len(q) > 0 {
		it := q[0]
		c.pending[input] = q[1:]
		return it, true
	}
	for {
		msg, ok := c.ex.recv(c.node)
		if !ok {
			return graph.Item{}, false
		}
		if msg.input == input {
			return msg.item, true
		}
		c.pending[msg.input] = append(c.pending[msg.input], msg.item)
	}
}

// runInput generates opts.Frames frames of scan-order chunks with
// end-of-line and end-of-frame tokens (paper §II-C: these two tokens
// are generated automatically by the data inputs).
func (ex *executor) runInput(n *graph.Node) error {
	gen := ex.opts.Sources[n.Name()]
	if gen == nil {
		gen = frame.Gradient
	}
	out := n.Output("out")
	chunk := out.Size
	fs := n.FrameSize
	if fs.W%chunk.W != 0 || fs.H%chunk.H != 0 {
		return fmt.Errorf("runtime: input %q frame %v not divisible by chunk %v", n.Name(), fs, chunk)
	}
	for f := 0; f < ex.opts.Frames; f++ {
		select {
		case <-ex.stop:
			return nil
		default:
		}
		img := gen(int64(f), fs.W, fs.H)
		row := int64(f) * int64(fs.H/chunk.H)
		for y := 0; y+chunk.H <= fs.H; y += chunk.H {
			for x := 0; x+chunk.W <= fs.W; x += chunk.W {
				ex.send(out, graph.DataItem(img.Sub(x, y, chunk.W, chunk.H)))
			}
			ex.send(out, graph.TokenItem(token.EOL(row)))
			row++
		}
		ex.send(out, graph.TokenItem(token.EOF(int64(f))))
	}
	return nil
}

// runOutput collects the stream and stops the run once every output
// has seen the full frame budget.
func (ex *executor) runOutput(n *graph.Node) error {
	for {
		msg, ok := ex.recv(n)
		if !ok {
			return nil
		}
		ex.outMu.Lock()
		ex.outputs[n.Name()] = append(ex.outputs[n.Name()], msg.item)
		if msg.item.IsToken && msg.item.Tok.Kind == token.EndOfFrame {
			ex.eofSeen[n.Name()]++
			done := true
			for _, o := range ex.g.Outputs() {
				if ex.eofSeen[o.Name()] < ex.opts.Frames {
					done = false
					break
				}
			}
			if done {
				ex.outMu.Unlock()
				ex.stopAll()
				return nil
			}
		}
		ex.outMu.Unlock()
	}
}
