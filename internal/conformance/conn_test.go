package conformance

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"blockpar/internal/apps"
	"blockpar/internal/conn"
	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/machine"
	"blockpar/internal/serve"
)

// connApps builds the generalized-connection benchmark pair at the
// suite dimensions: MC (broadcast + windowed sharing + stride-1
// gathers) and WC (strided scatter-gather with a broadcast taps input).
func connApps() []*apps.App {
	return []*apps.App{
		apps.MultiCam("multicam", apps.MultiCamCfg{W: 20, H: 12, Rate: geom.FInt(10)}),
		apps.Channelizer("channelizer", apps.ChannelizerCfg{W: 240, H: 4, Rate: geom.FInt(10)}),
	}
}

// TestOracleMatchesConnAppGoldens anchors the oracle's scatter, gather,
// and shared-window semantics against the hand-computed goldens of the
// connection benchmarks, the same cross-check TestOracleMatchesAppGoldens
// applies to the paper suite.
func TestOracleMatchesConnAppGoldens(t *testing.T) {
	const frames = 2
	for _, app := range connApps() {
		t.Run(app.Name, func(t *testing.T) {
			c := &Case{Name: app.Name, Graph: app.Graph, Sources: app.Sources}
			got, err := OracleFrames(c, frames)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			for f := 0; f < frames; f++ {
				want := app.Golden(int64(f))
				for name, ws := range want {
					if err := compareWindows(got[f][name], ws); err != nil {
						t.Errorf("output %q frame %d: %v", name, f, err)
					}
				}
			}
		})
	}
}

// TestDiffConnApps is the acceptance bar for the connection subsystem:
// both benchmarks must stream byte-identically to the oracle through
// the batch runtime, the worker-pool executor, a streaming session, the
// simulator, a loopback cluster session, and a partitioned session
// split by the placement layer across a 2-worker fleet — at every
// compilation variant. Broadcast fan-out crossing a partition cut and
// the co-located shared rings both ride this test.
func TestDiffConnApps(t *testing.T) {
	backends := append(DefaultBackends(), "cluster", "partitioned")
	for _, app := range connApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			c := &Case{Name: app.Name, Graph: app.Graph, Sources: app.Sources}
			if err := Check(c, CheckOptions{Backends: backends}); err != nil {
				t.Fatalf("app %s: %v", app.Name, err)
			}
		})
	}
}

// TestServeConnApps extends the bar across the HTTP boundary: the
// connection benchmarks registered with a serve registry must stream
// their hand-computed goldens exactly over the wire.
func TestServeConnApps(t *testing.T) {
	reg := serve.NewRegistry(machine.Default())
	srv := serve.NewServer(reg, serve.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const frames = 2
	for _, app := range connApps() {
		t.Run(app.Name, func(t *testing.T) {
			if _, err := reg.AddApp(app.Name, "conn", app); err != nil {
				t.Fatalf("register: %v", err)
			}
			var open struct {
				Session string `json:"session"`
			}
			postJSON(t, ts, "/sessions", map[string]any{"pipeline": app.Name}, http.StatusCreated, &open)
			for f := 0; f < frames; f++ {
				var rep struct {
					Outputs map[string][]serve.WindowJSON `json:"outputs"`
				}
				postJSON(t, ts, "/sessions/"+open.Session+"/process", nil, http.StatusOK, &rep)
				for name, ws := range app.Golden(int64(f)) {
					got := make([]frame.Window, len(rep.Outputs[name]))
					for i, jw := range rep.Outputs[name] {
						w, err := jw.ToWindow()
						if err != nil {
							t.Fatalf("output %q window %d: %v", name, i, err)
						}
						got[i] = w
					}
					if err := compareWindows(got, ws); err != nil {
						t.Fatalf("output %q frame %d: %v", name, f, err)
					}
				}
			}
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+open.Session, nil)
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		})
	}
}

// TestDiffConnSmoke is the per-PR smoke over the generalized-connection
// generator space: seeded scatter-gather chains, broadcast fan-outs,
// and shared-window pairs diffed across the default backends. CI runs
// it at -conformance.n=25.
func TestDiffConnSmoke(t *testing.T) {
	n := *nFlag
	if n > 25 {
		n = 25
	}
	if testing.Short() && n > 5 {
		n = 5
	}
	for i := 0; i < n; i++ {
		seed := *seedFlag + uint64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			c := GenerateConn(seed)
			if err := Check(c, CheckOptions{}); err != nil {
				t.Fatalf("case %s: %v", c.Name, err)
			}
		})
	}
}

// TestChaosBroadcastFanout is the kill campaign on broadcast fan-out:
// a stream fanned out to three consumers through a declared broadcast
// connection survives a mid-stream worker kill with byte-identical
// replay — the retained-reference fan-out must not leak arena windows
// or desynchronize any consumer across the failover.
func TestChaosBroadcastFanout(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos skipped in -short")
	}
	for i := 0; i < 3; i++ {
		seed := 2000 + uint64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := graph.New("bcast-chaos")
			in := g.AddInput("Input", geom.Sz(12, 8), geom.Sz(1, 1), geom.FInt(10))
			tos := make([]*graph.Port, 3)
			for b := 0; b < 3; b++ {
				gain := g.Add(kernel.Gain(fmt.Sprintf("Gain%d", b), float64(b+1)))
				g.Connect(in, "out", gain, "in")
				tos[b] = gain.Input("in")
				out := g.AddOutput(fmt.Sprintf("out%d", b), geom.Sz(1, 1))
				g.Connect(gain, "out", out, "in")
			}
			g.AddConn("bcast", conn.Broadcast, in.Output("out"), tos)
			c := &Case{Name: "bcast-chaos", Graph: g, Sources: map[string]frame.Generator{"Input": frame.LCG}}
			if err := CheckChaos(c, seed, "kill"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestScatterGatherPermutation pins the semantics of a MISMATCHED
// scatter/gather pair: the gather interleaves branches by its own
// schedule, so scatter {ways 2, stride 2} into gather {ways 2, stride
// 1} is a well-defined stream permutation — not an error — and every
// backend must realize the same one as the oracle.
func TestScatterGatherPermutation(t *testing.T) {
	build := func() (*graph.Graph, map[string]frame.Generator) {
		g := graph.New("sg-mismatch")
		in := g.AddInput("Input", geom.Sz(8, 2), geom.Sz(1, 1), geom.FInt(10))
		sc := g.Add(kernel.Scatter("Deal", conn.Schedule{Ways: 2, Stride: 2}, geom.Sz(1, 1)))
		ga := g.Add(kernel.Gather("Merge", conn.Schedule{Ways: 2, Stride: 1}, geom.Sz(1, 1)))
		out := g.AddOutput("result", geom.Sz(1, 1))
		g.Connect(in, "out", sc, "in")
		for b := 0; b < 2; b++ {
			gain := g.Add(kernel.Gain(fmt.Sprintf("Gain%d", b), float64(b+2)))
			g.Connect(sc, fmt.Sprintf("out%d", b), gain, "in")
			g.Connect(gain, "out", ga, fmt.Sprintf("in%d", b))
		}
		g.Connect(ga, "out", out, "in")
		return g, map[string]frame.Generator{"Input": frame.LCG}
	}

	// The oracle must realize exactly the hand-derived permutation:
	// scatter deals row columns {0,1,4,5} to branch 0 and {2,3,6,7} to
	// branch 1; the stride-1 gather emits position 2l+b from branch b's
	// l-th item.
	g, sources := build()
	c := &Case{Name: "sg-mismatch", Graph: g, Sources: sources}
	got, err := OracleFrames(c, 2)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	deal := conn.Schedule{Ways: 2, Stride: 2}
	merge := conn.Schedule{Ways: 2, Stride: 1}
	gains := []float64{2, 3}
	for f := 0; f < 2; f++ {
		img := frame.LCG(int64(f), 8, 2)
		want := make([]frame.Window, 0, 16)
		for y := 0; y < 2; y++ {
			row := make([]float64, 8)
			branch := make([][]float64, 2)
			for x := 0; x < 8; x++ {
				b := deal.BranchOf(int64(x))
				branch[b] = append(branch[b], img.At(x, y)*gains[b])
			}
			for b := 0; b < 2; b++ {
				for l, v := range branch[b] {
					row[int(merge.GlobalIndex(b, int64(l)))] = v
				}
			}
			for _, v := range row {
				want = append(want, frame.Scalar(v))
			}
		}
		if err := compareWindows(got[f]["result"], want); err != nil {
			t.Fatalf("frame %d: oracle disagrees with hand-derived permutation: %v", f, err)
		}
	}

	// And every backend must agree with the oracle.
	g2, sources2 := build()
	c2 := &Case{Name: "sg-mismatch", Graph: g2, Sources: sources2}
	if err := Check(c2, CheckOptions{}); err != nil {
		t.Fatal(err)
	}
}
