package cluster

import (
	"fmt"
	"net"
	"time"
)

// Loopback starts a worker on a loopback TCP listener and a
// single-worker dispatcher connected to it — the in-process harness the
// conformance driver, the cluster tests, and BenchmarkClusterLoopback
// use to exercise the full wire path without spawning processes. The
// returned stop function tears both down.
func Loopback(w *Worker, dopts DispatcherOptions) (*Dispatcher, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	go w.Serve(ln)
	d := NewDispatcher([]string{ln.Addr().String()}, dopts)
	if err := d.WaitReady(5 * time.Second); err != nil {
		d.Close()
		w.Close()
		return nil, nil, err
	}
	stop := func() {
		d.Close()
		w.Close()
	}
	return d, stop, nil
}

// LoopbackFleet starts n workers, each on its own loopback listener,
// and one dispatcher connected to all of them — the harness for
// partitioned-session tests and benchmarks. It blocks until every
// worker is placeable (a partitioned open needs the whole fleet), so
// callers can open sessions immediately. The returned workers allow
// targeted kills in chaos tests; the stop function tears everything
// down.
func LoopbackFleet(n int, dopts DispatcherOptions, mk func(i int) *Worker) (*Dispatcher, []*Worker, func(), error) {
	workers := make([]*Worker, n)
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	cleanup := func() {
		for _, ln := range lns {
			if ln != nil {
				ln.Close()
			}
		}
		for _, w := range workers {
			if w != nil {
				w.Close()
			}
		}
	}
	for i := 0; i < n; i++ {
		w := mk(i)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		workers[i], lns[i], addrs[i] = w, ln, ln.Addr().String()
		go w.Serve(ln)
	}
	d := NewDispatcher(addrs, dopts)
	deadline := time.Now().Add(5 * time.Second)
	for {
		up := 0
		for _, w := range d.workers {
			if w.placeable() {
				up++
			}
		}
		if up == n {
			break
		}
		if time.Now().After(deadline) {
			d.Close()
			cleanup()
			return nil, nil, nil, fmt.Errorf("cluster: %d/%d workers reachable within 5s", up, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop := func() {
		d.Close()
		cleanup()
	}
	return d, workers, stop, nil
}
