package graph

import (
	"fmt"

	"blockpar/internal/geom"
)

// Edge is a stream channel from an output port to an input port. An
// output port may fan out to several edges (the data is duplicated);
// an input port is fed by exactly one edge.
type Edge struct {
	From *Port
	To   *Port
}

func (e *Edge) String() string {
	return fmt.Sprintf("%s -> %s", e.From, e.To)
}

// DepEdge is a data-dependency edge (paper §IV-B): it limits the
// parallelism of To to the parallelism of From without moving data.
type DepEdge struct {
	From *Node
	To   *Node
}

// Graph is a block-parallel application description.
type Graph struct {
	Name string

	nodes       []*Node
	nodesByName map[string]*Node
	edges       []*Edge
	deps        []*DepEdge
	conns       []*Conn
}

// New creates an empty application graph.
func New(name string) *Graph {
	return &Graph{Name: name, nodesByName: make(map[string]*Node)}
}

// Add inserts a node; node names must be unique within the graph.
func (g *Graph) Add(n *Node) *Node {
	if _, dup := g.nodesByName[n.Name()]; dup {
		panic(fmt.Sprintf("graph: duplicate node name %q", n.Name()))
	}
	g.nodes = append(g.nodes, n)
	g.nodesByName[n.Name()] = n
	return n
}

// AddInput declares an application input: frame size, chunk emitted per
// tick (usually 1×1 scan-order pixels), and frame rate in Hz.
func (g *Graph) AddInput(name string, frameSize geom.Size, chunk geom.Size, rate geom.Frac) *Node {
	n := NewNode(name, KindInput)
	n.FrameSize = frameSize
	n.Rate = rate
	n.CreateOutput("out", chunk, geom.St(chunk.W, chunk.H))
	return g.Add(n)
}

// AddOutput declares an application output sink accepting items of the
// given size.
func (g *Graph) AddOutput(name string, chunk geom.Size) *Node {
	n := NewNode(name, KindOutput)
	n.CreateInput("in", chunk, geom.St(chunk.W, chunk.H), geom.Off(0, 0))
	return g.Add(n)
}

// Remove deletes a node and all edges touching it. Dependency edges
// touching it are dropped as well.
func (g *Graph) Remove(n *Node) {
	delete(g.nodesByName, n.Name())
	nodes := g.nodes[:0]
	for _, o := range g.nodes {
		if o != n {
			nodes = append(nodes, o)
		}
	}
	g.nodes = nodes
	edges := g.edges[:0]
	for _, e := range g.edges {
		if e.From.node != n && e.To.node != n {
			edges = append(edges, e)
		}
	}
	g.edges = edges
	deps := g.deps[:0]
	for _, d := range g.deps {
		if d.From != n && d.To != n {
			deps = append(deps, d)
		}
	}
	g.deps = deps
	g.pruneConns(n)
}

// Rename changes a node's name, keeping the index consistent.
func (g *Graph) Rename(n *Node, name string) {
	if g.nodesByName[n.Name()] != n {
		panic(fmt.Sprintf("graph: node %q not in graph", n.Name()))
	}
	if _, dup := g.nodesByName[name]; dup {
		panic(fmt.Sprintf("graph: duplicate node name %q", name))
	}
	delete(g.nodesByName, n.Name())
	n.SetName(name)
	g.nodesByName[name] = n
}

// Connect adds a stream channel from node from's output port out to
// node to's input port in.
func (g *Graph) Connect(from *Node, out string, to *Node, in string) *Edge {
	fp := from.Output(out)
	if fp == nil {
		panic(fmt.Sprintf("graph: %q has no output %q", from.Name(), out))
	}
	tp := to.Input(in)
	if tp == nil {
		panic(fmt.Sprintf("graph: %q has no input %q", to.Name(), in))
	}
	if g.nodesByName[from.Name()] != from || g.nodesByName[to.Name()] != to {
		panic("graph: connecting nodes that are not in the graph")
	}
	if g.EdgeTo(tp) != nil {
		panic(fmt.Sprintf("graph: input %s already connected", tp))
	}
	e := &Edge{From: fp, To: tp}
	g.edges = append(g.edges, e)
	return e
}

// Disconnect removes the given edge.
func (g *Graph) Disconnect(e *Edge) {
	edges := g.edges[:0]
	for _, o := range g.edges {
		if o != e {
			edges = append(edges, o)
		}
	}
	g.edges = edges
}

// AddDep adds a data-dependency edge limiting to's parallelism to
// from's (paper §IV-B, Figure 1(b)).
func (g *Graph) AddDep(from, to *Node) *DepEdge {
	d := &DepEdge{From: from, To: to}
	g.deps = append(g.deps, d)
	return d
}

// Nodes returns the nodes in insertion order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Edges returns the stream edges in insertion order.
func (g *Graph) Edges() []*Edge { return g.edges }

// Deps returns the data-dependency edges.
func (g *Graph) Deps() []*DepEdge { return g.deps }

// Node returns the named node, or nil.
func (g *Graph) Node(name string) *Node { return g.nodesByName[name] }

// EdgeTo returns the edge feeding the given input port, or nil.
func (g *Graph) EdgeTo(p *Port) *Edge {
	for _, e := range g.edges {
		if e.To == p {
			return e
		}
	}
	return nil
}

// EdgesFrom returns all edges leaving the given output port.
func (g *Graph) EdgesFrom(p *Port) []*Edge {
	var out []*Edge
	for _, e := range g.edges {
		if e.From == p {
			out = append(out, e)
		}
	}
	return out
}

// InEdges returns the edges feeding any input of n, in input order.
func (g *Graph) InEdges(n *Node) []*Edge {
	var out []*Edge
	for _, p := range n.Inputs() {
		if e := g.EdgeTo(p); e != nil {
			out = append(out, e)
		}
	}
	return out
}

// OutEdges returns the edges leaving any output of n, in output order.
func (g *Graph) OutEdges(n *Node) []*Edge {
	var out []*Edge
	for _, p := range n.Outputs() {
		out = append(out, g.EdgesFrom(p)...)
	}
	return out
}

// Inputs returns the application input nodes in insertion order.
func (g *Graph) Inputs() []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if n.Kind == KindInput {
			out = append(out, n)
		}
	}
	return out
}

// Outputs returns the application output nodes in insertion order.
func (g *Graph) Outputs() []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if n.Kind == KindOutput {
			out = append(out, n)
		}
	}
	return out
}

// Neighbors returns the distinct nodes connected to n by stream edges
// (either direction), in deterministic order.
func (g *Graph) Neighbors(n *Node) []*Node {
	seen := make(map[*Node]bool)
	var out []*Node
	add := func(o *Node) {
		if o != n && !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	for _, e := range g.edges {
		if e.From.node == n {
			add(e.To.node)
		}
		if e.To.node == n {
			add(e.From.node)
		}
	}
	return out
}
