// Feedback demonstrates the §III-D extension: a cycle in the
// application graph broken by a feedback kernel that supplies the
// loop's initial value. The application computes a per-row running sum
// (an IIR-style accumulation) — each sample is added to the loop state,
// emitted, and fed back.
package main

import (
	"fmt"
	"log"

	"blockpar"
)

func main() {
	const w, h = 8, 3
	g := blockpar.NewApp("running-sum")
	in := g.AddInput("Input", blockpar.Sz(w, h), blockpar.Sz(1, 1), blockpar.FInt(100))
	acc := g.Add(blockpar.Accumulator("Acc"))
	fb := g.Add(blockpar.Feedback("Loop", blockpar.Sz(1, 1),
		[]blockpar.Window{blockpar.Scalar(0)}))
	out := g.AddOutput("Output", blockpar.Sz(1, 1))

	g.Connect(in, "out", acc, "in")
	g.Connect(fb, "out", acc, "state")
	g.Connect(acc, "loop", fb, "in") // closes the cycle
	g.Connect(acc, "out", out, "in")

	// The data-flow analysis handles the loop with its second pass.
	analysis, err := blockpar.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}
	ni := analysis.NodeInfoOf(acc)
	fmt.Printf("accumulator fires %dx%d per frame at %v Hz\n", ni.IterX, ni.IterY, ni.Rate)

	ones := blockpar.Constant(1)
	res, err := blockpar.Run(g, blockpar.RunOptions{
		Frames:  1,
		Sources: map[string]blockpar.Generator{"Input": ones},
	})
	if err != nil {
		log.Fatal(err)
	}
	got := res.DataWindows("Output")
	fmt.Print("running sums over a frame of ones: ")
	for i, v := range got {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Printf("%.0f", v.Value())
	}
	fmt.Println()
	if want := float64(w * h); got[len(got)-1].Value() != want {
		log.Fatalf("final sum = %v, want %v", got[len(got)-1].Value(), want)
	}
	fmt.Println("feedback loop verified: final sum equals the frame's sample count")
}
