// Package frame provides the two-dimensional data carried on stream
// channels: windows (the unit item moved per kernel iteration), whole
// frames, deterministic synthetic frame generators, and golden
// sequential implementations of the paper's filters used to verify the
// transformed applications functionally.
package frame

import (
	"fmt"
	"math"
	"unsafe"
)

// Window is a row-major 2-D block of samples. It is the value a channel
// carries per kernel iteration: a (1x1) window for pixel streams, a
// (5x5) window for a buffered convolution input, a (32x1) window for
// histogram bins, and so on.
//
// A window is either dense (rows packed back to back, Stride zero) or a
// strided view sharing another window's storage (Stride is the parent's
// row pitch, measured in elements). Views are how the zero-copy data
// plane avoids per-item copies; consumers that index storage directly
// must either require IsDense or go through At/Row. Storage may
// additionally be pooled (see Alloc); pooled windows follow the
// retain/release protocol described in pool.go.
//
// The element type is a first-class property (Kind): the zero value F64
// stores samples in Pix, while U8 and F32 windows store them at native
// width in raw. Generic accessors (At, Set, Value) promote to float64;
// the row-batched kernel loops use the typed spans (Row, RowU8, RowF32)
// so the inner loops are free of per-sample conversions and bounds
// checks the compiler cannot hoist.
type Window struct {
	W, H int
	// Stride is the row pitch in elements; zero means dense (rows of
	// exactly W elements, packed).
	Stride int
	// Kind is the element type; the zero value is F64.
	Kind Kind
	// Pix is the element storage of F64 windows (nil otherwise).
	Pix []float64
	// raw is the native-width element storage of U8 and F32 windows
	// (nil for F64). For F32 it aliases a []float32 allocation, so
	// 4-byte alignment holds by construction.
	raw []byte

	// ref tracks pooled backing storage; nil for plain windows.
	ref *Ref
}

// RowStride returns the distance in elements between vertically
// adjacent samples.
func (w Window) RowStride() int {
	if w.Stride > 0 {
		return w.Stride
	}
	return w.W
}

// IsDense reports whether storage is packed row-major with no gaps.
func (w Window) IsDense() bool { return w.Stride == 0 || w.Stride == w.W }

// NewWindow allocates a zeroed w×h dense F64 window.
func NewWindow(w, h int) Window {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("frame: invalid window size %dx%d", w, h))
	}
	return Window{W: w, H: h, Pix: make([]float64, w*h)}
}

// NewWindowKind allocates a zeroed w×h dense window of the given
// element kind.
func NewWindowKind(k Kind, w, h int) Window {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("frame: invalid window size %dx%d", w, h))
	}
	switch k {
	case U8:
		return Window{W: w, H: h, Kind: U8, raw: make([]byte, w*h)}
	case F32:
		return Window{W: w, H: h, Kind: F32, raw: f32bytes(make([]float32, w*h))}
	default:
		return Window{W: w, H: h, Pix: make([]float64, w*h)}
	}
}

// f32bytes views a float32 slice as its backing bytes.
func f32bytes(f []float32) []byte {
	if len(f) == 0 {
		return []byte{}
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&f[0])), len(f)*4)
}

// bytesF32 views a byte slice as float32s; the base must be 4-aligned,
// which holds for every storage path that produces F32 windows (typed
// allocations and the pool's 8-aligned buffers).
func bytesF32(b []byte) []float32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// WrapBytes wraps raw — w*h elements of kind k at native width — as a
// dense typed window without copying. The base must be suitably
// aligned for k (AlignedBytes and pool storage both are). F64 callers
// should construct a Window with Pix directly instead.
func WrapBytes(k Kind, w, h int, raw []byte) Window {
	if k == F64 || !k.Valid() {
		panic(fmt.Sprintf("frame: WrapBytes of %v", k))
	}
	if len(raw) != w*h*k.Bytes() {
		panic(fmt.Sprintf("frame: WrapBytes %v %dx%d needs %d bytes, got %d",
			k, w, h, w*h*k.Bytes(), len(raw)))
	}
	return Window{W: w, H: h, Kind: k, raw: raw}
}

// AlignedBytes returns an empty byte slice with at least the given
// capacity whose base address is 8-byte aligned (it is backed by a
// float64 allocation), suitable for carving typed window storage out
// of.
func AlignedBytes(capacity int) []byte {
	return f64bytes(make([]float64, (capacity+7)/8))[:0]
}

// Scalar returns a 1x1 F64 window holding v.
func Scalar(v float64) Window {
	return Window{W: 1, H: 1, Pix: []float64{v}}
}

// FromRows builds a dense F64 window from row-major rows; all rows must
// have the same length.
func FromRows(rows [][]float64) Window {
	h := len(rows)
	if h == 0 {
		return Window{}
	}
	w := len(rows[0])
	win := NewWindow(w, h)
	for y, row := range rows {
		if len(row) != w {
			panic("frame: ragged rows")
		}
		copy(win.Pix[y*w:(y+1)*w], row)
	}
	return win
}

// At returns the sample at (x, y) promoted to float64. It panics on
// out-of-range access.
func (w Window) At(x, y int) float64 {
	if x < 0 || x >= w.W || y < 0 || y >= w.H {
		panic(fmt.Sprintf("frame: At(%d,%d) outside %dx%d", x, y, w.W, w.H))
	}
	i := y*w.RowStride() + x
	switch w.Kind {
	case U8:
		return float64(w.raw[i])
	case F32:
		return float64(bytesF32(w.raw)[i])
	default:
		return w.Pix[i]
	}
}

// Set stores v at (x, y), narrowing to the window's element kind (u8
// stores clamp to [0,255] and round half away from zero). It panics on
// out-of-range access.
func (w Window) Set(x, y int, v float64) {
	if x < 0 || x >= w.W || y < 0 || y >= w.H {
		panic(fmt.Sprintf("frame: Set(%d,%d) outside %dx%d", x, y, w.W, w.H))
	}
	i := y*w.RowStride() + x
	switch w.Kind {
	case U8:
		w.raw[i] = quantizeU8(v)
	case F32:
		bytesF32(w.raw)[i] = float32(v)
	default:
		w.Pix[i] = v
	}
}

// quantizeU8 is the explicit narrowing rule of the data plane: clamp to
// [0,255], round half away from zero. Conversion kernels and Set share
// it so a narrowed stream is reproducible everywhere.
func quantizeU8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Row returns the y-th row as a span of exactly W float64 samples,
// valid for dense and strided F64 windows alike. It panics for typed
// windows — use RowU8/RowF32 (or At) for those.
func (w Window) Row(y int) []float64 {
	if w.Kind != F64 {
		panic(fmt.Sprintf("frame: Row on %v window; use Row%s", w.Kind, w.Kind))
	}
	s := w.RowStride()
	return w.Pix[y*s : y*s+w.W]
}

// RowU8 returns the y-th row of a U8 window as a span of W bytes.
func (w Window) RowU8(y int) []byte {
	if w.Kind != U8 {
		panic(fmt.Sprintf("frame: RowU8 on %v window", w.Kind))
	}
	s := w.RowStride()
	return w.raw[y*s : y*s+w.W]
}

// RowF32 returns the y-th row of an F32 window as a span of W floats.
func (w Window) RowF32(y int) []float32 {
	if w.Kind != F32 {
		panic(fmt.Sprintf("frame: RowF32 on %v window", w.Kind))
	}
	s := w.RowStride()
	return bytesF32(w.raw)[y*s : y*s+w.W]
}

// Bytes returns the y-th row's native-width storage (any kind): W
// elements starting at the row origin. Used by the wire codec to
// encode windows without promotion.
func (w Window) RowBytes(y int) []byte {
	es := w.Kind.Bytes()
	s := w.RowStride()
	if w.Kind == F64 {
		row := w.Pix[y*s : y*s+w.W]
		if len(row) == 0 {
			return nil
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&row[0])), len(row)*8)
	}
	return w.raw[y*s*es : (y*s+w.W)*es]
}

// Value returns the single sample of a 1x1 window, promoted.
func (w Window) Value() float64 {
	if w.W != 1 || w.H != 1 {
		panic(fmt.Sprintf("frame: Value() on %dx%d window", w.W, w.H))
	}
	return w.At(0, 0)
}

// Clone returns an independent dense, unpooled deep copy of the window,
// preserving its element kind. Kernels use it for any input they keep
// across firings.
func (w Window) Clone() Window {
	out := NewWindowKind(w.Kind, w.W, w.H)
	copyRows(out, w)
	return out
}

// copyRows copies the sample rows of src into the dense window dst;
// both must have the same shape and kind.
func copyRows(dst, src Window) {
	es := src.Kind.Bytes()
	s := src.RowStride()
	if src.Kind == F64 {
		for y := 0; y < src.H; y++ {
			copy(dst.Pix[y*src.W:(y+1)*src.W], src.Pix[y*s:y*s+src.W])
		}
		return
	}
	for y := 0; y < src.H; y++ {
		copy(dst.raw[y*src.W*es:(y+1)*src.W*es], src.raw[y*s*es:(y*s+src.W)*es])
	}
}

// Dense returns a window whose storage is packed row-major; the
// receiver itself when it already is, a compact copy otherwise.
func (w Window) Dense() Window {
	if w.IsDense() {
		if w.Kind == F64 {
			if len(w.Pix) == w.W*w.H {
				return w
			}
			return Window{W: w.W, H: w.H, Pix: w.Pix[:w.W*w.H], ref: w.ref}
		}
		es := w.Kind.Bytes()
		if len(w.raw) == w.W*w.H*es {
			return w
		}
		return Window{W: w.W, H: w.H, Kind: w.Kind, raw: w.raw[:w.W*w.H*es], ref: w.ref}
	}
	return w.Clone()
}

// Sub returns a dense copy of the sub-window of size sw×sh anchored at
// (x, y), preserving the element kind.
func (w Window) Sub(x, y, sw, sh int) Window {
	out := NewWindowKind(w.Kind, sw, sh)
	copyRows(out, w.View(x, y, sw, sh))
	return out
}

// View returns a vw×vh window sharing the receiver's storage, anchored
// at (x, y) — the zero-copy counterpart of Sub. The view is valid as
// long as the parent's storage is: it shares any pooled backing, so
// the retain/release protocol covers both. Mutations through either
// window are visible in the other.
func (w Window) View(x, y, vw, vh int) Window {
	if x < 0 || y < 0 || vw < 0 || vh < 0 || x+vw > w.W || y+vh > w.H {
		panic(fmt.Sprintf("frame: View(%d,%d,%dx%d) outside %dx%d", x, y, vw, vh, w.W, w.H))
	}
	s := w.RowStride()
	off := y*s + x
	end := off + (vh-1)*s + vw
	if vw == 0 || vh == 0 {
		end = off
	}
	out := Window{W: vw, H: vh, Stride: s, Kind: w.Kind, ref: w.ref}
	if w.Kind == F64 {
		out.Pix = w.Pix[off:end]
	} else {
		es := w.Kind.Bytes()
		out.raw = w.raw[off*es : end*es]
	}
	return out
}

// Convert returns a dense, unpooled copy of the window with the given
// element kind. Widening conversions (u8→f32/f64, f32→f64) are exact;
// narrowing to f32 rounds to nearest, and narrowing to u8 clamps to
// [0, 255] and rounds half away from zero (see quantizeU8).
func (w Window) Convert(to Kind) Window {
	if to == w.Kind {
		return w.Clone()
	}
	out := NewWindowKind(to, w.W, w.H)
	for y := 0; y < w.H; y++ {
		for x := 0; x < w.W; x++ {
			out.Set(x, y, w.At(x, y))
		}
	}
	return out
}

// Equal reports whether two windows have identical element kind, shape,
// and samples. Kinds are compared strictly: a u8 window never equals an
// f64 window, even when promotion would make the samples agree — typed
// streams diff against the f64 oracle through the conformance layer's
// explicit tolerance gate, not through silent promotion here.
func (w Window) Equal(o Window) bool {
	if w.W != o.W || w.H != o.H || w.Kind != o.Kind {
		return false
	}
	switch w.Kind {
	case U8:
		for y := 0; y < w.H; y++ {
			wr, or := w.RowU8(y), o.RowU8(y)
			for x := range wr {
				if wr[x] != or[x] {
					return false
				}
			}
		}
	case F32:
		for y := 0; y < w.H; y++ {
			wr, or := w.RowF32(y), o.RowF32(y)
			for x := range wr {
				if wr[x] != or[x] {
					return false
				}
			}
		}
	default:
		ws, os := w.RowStride(), o.RowStride()
		for y := 0; y < w.H; y++ {
			wr, or := w.Pix[y*ws:y*ws+w.W], o.Pix[y*os:y*os+w.W]
			for x := range wr {
				if wr[x] != or[x] {
					return false
				}
			}
		}
	}
	return true
}

// AlmostEqual reports shape equality and element-wise |a-b| <= tol
// after promotion to float64. Unlike Equal it tolerates differing
// element kinds: it is the comparison the conformance tolerance gate
// uses to diff typed backends against the f64 oracle.
func (w Window) AlmostEqual(o Window, tol float64) bool {
	if w.W != o.W || w.H != o.H {
		return false
	}
	for y := 0; y < w.H; y++ {
		for x := 0; x < w.W; x++ {
			if math.Abs(w.At(x, y)-o.At(x, y)) > tol {
				return false
			}
		}
	}
	return true
}

func (w Window) String() string {
	if w.Kind != F64 {
		return fmt.Sprintf("Window(%dx%d %v)", w.W, w.H, w.Kind)
	}
	return fmt.Sprintf("Window(%dx%d)", w.W, w.H)
}

// Frame is a whole image: a Window with frame-level helpers. Frames are
// what generators produce and what golden reference filters consume.
type Frame = Window

// Windows enumerates, in scan-line order (left-to-right, top-to-bottom),
// every ww×wh window position of f advanced by (sx, sy), calling fn with
// the window's top-left coordinate. It is the canonical iteration-space
// walk shared by golden implementations and tests.
func Windows(f Frame, ww, wh, sx, sy int, fn func(x, y int)) {
	if ww > f.W || wh > f.H || ww < 1 || wh < 1 || sx < 1 || sy < 1 {
		return
	}
	for y := 0; y+wh <= f.H; y += sy {
		for x := 0; x+ww <= f.W; x += sx {
			fn(x, y)
		}
	}
}
