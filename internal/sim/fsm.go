package sim

import (
	"fmt"

	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/token"
)

// fsmCycles is the per-item cost of the compiler-inserted FSM kernels,
// matching the kernel library's registration.
const fsmCycles = 2

// bufferAuto is the count-only twin of the buffer kernel, driven by the
// same BufferPlan.
type bufferAuto struct {
	node *graph.Node
	plan kernel.BufferPlan
	x, y int

	pendX, pendY int
}

func newBufferAuto(n *graph.Node) (*bufferAuto, error) {
	plan, ok := kernel.BufferPlanOf(n)
	if !ok {
		return nil, fmt.Errorf("sim: %q has no buffer plan", n.Name())
	}
	return &bufferAuto{node: n, plan: plan}, nil
}

func (a *bufferAuto) next(qs map[string]*queue) *firing {
	it, ok := qs["in"].head()
	if !ok {
		return nil
	}
	a.pendX, a.pendY = a.x, a.y
	f := &firing{
		consume: map[string]int{"in": 1},
		produce: make(map[string][]item),
		cycles:  fsmCycles,
	}
	if it.isTok {
		switch it.tok.Kind {
		case token.EndOfLine:
			f.label = "eol"
			a.pendX, a.pendY = 0, a.y+1
		case token.EndOfFrame:
			f.label = "eof"
			f.produce["out"] = append(f.produce["out"], tokenItem(it.tok))
			a.pendX, a.pendY = 0, 0
		default:
			f.label = "tok"
			f.produce["out"] = append(f.produce["out"], it)
		}
		return f
	}
	f.label = "sample"
	emit, _, wy, rowEnd := a.plan.OnSample(a.x, a.y)
	if emit {
		f.produce["out"] = append(f.produce["out"],
			dataItem(int64(a.plan.WinW)*int64(a.plan.WinH)))
		if rowEnd {
			f.produce["out"] = append(f.produce["out"],
				tokenItem(token.EOL(int64(wy/a.plan.StepY))))
		}
	}
	a.pendX = a.x + 1
	return f
}

func (a *bufferAuto) commit(*firing) { a.x, a.y = a.pendX, a.pendY }

// shareAuto is the count-only twin of the shared ring buffer: one
// window emission per step position, delivered to every consumer
// output (each consumer receives a reference to the same span, so the
// firing count per output equals the private-buffer case while the
// memory stays one ring).
type shareAuto struct {
	node *graph.Node
	plan kernel.BufferPlan
	ways int
	x, y int

	pendX, pendY int
}

func (a *shareAuto) next(qs map[string]*queue) *firing {
	it, ok := qs["in"].head()
	if !ok {
		return nil
	}
	a.pendX, a.pendY = a.x, a.y
	f := &firing{
		consume: map[string]int{"in": 1},
		produce: make(map[string][]item),
		cycles:  fsmCycles,
	}
	outs := make([]string, a.ways)
	for i := range outs {
		outs[i] = fmt.Sprintf("out%d", i)
	}
	if it.isTok {
		switch it.tok.Kind {
		case token.EndOfLine:
			f.label = "eol"
			a.pendX, a.pendY = 0, a.y+1
		case token.EndOfFrame:
			f.label = "eof"
			for _, out := range outs {
				f.produce[out] = append(f.produce[out], tokenItem(it.tok))
			}
			a.pendX, a.pendY = 0, 0
		default:
			f.label = "tok"
			for _, out := range outs {
				f.produce[out] = append(f.produce[out], it)
			}
		}
		return f
	}
	f.label = "sample"
	emit, _, wy, rowEnd := a.plan.OnSample(a.x, a.y)
	if emit {
		for _, out := range outs {
			f.produce[out] = append(f.produce[out],
				dataItem(int64(a.plan.WinW)*int64(a.plan.WinH)))
			if rowEnd {
				f.produce[out] = append(f.produce[out],
					tokenItem(token.EOL(int64(wy/a.plan.StepY))))
			}
		}
	}
	a.pendX = a.x + 1
	return f
}

func (a *shareAuto) commit(*firing) { a.x, a.y = a.pendX, a.pendY }

// splitRRAuto distributes data round-robin, broadcasts tokens.
type splitRRAuto struct {
	node     *graph.Node
	n        int
	next_    int
	pendNext int
}

func (a *splitRRAuto) next(qs map[string]*queue) *firing {
	it, ok := qs["in"].head()
	if !ok {
		return nil
	}
	f := &firing{
		consume: map[string]int{"in": 1},
		produce: make(map[string][]item),
		cycles:  fsmCycles,
	}
	a.pendNext = a.next_
	if it.isTok {
		f.label = "broadcast"
		for i := 0; i < a.n; i++ {
			out := fmt.Sprintf("out%d", i)
			f.produce[out] = append(f.produce[out], it)
		}
		return f
	}
	f.label = "split"
	out := fmt.Sprintf("out%d", a.next_)
	f.produce[out] = append(f.produce[out], it)
	a.pendNext = (a.next_ + 1) % a.n
	return f
}

func (a *splitRRAuto) commit(*firing) { a.next_ = a.pendNext }

// joinRRAuto collects data round-robin; a token must head every branch
// before it forwards once.
type joinRRAuto struct {
	node     *graph.Node
	n        int
	next_    int
	pendNext int
}

func (a *joinRRAuto) next(qs map[string]*queue) *firing {
	cur := fmt.Sprintf("in%d", a.next_)
	it, ok := qs[cur].head()
	if !ok {
		return nil
	}
	a.pendNext = a.next_
	f := &firing{
		consume: map[string]int{},
		produce: make(map[string][]item),
		cycles:  fsmCycles,
	}
	if !it.isTok {
		f.label = "join"
		f.consume[cur] = 1
		f.produce["out"] = append(f.produce["out"], it)
		a.pendNext = (a.next_ + 1) % a.n
		return f
	}
	// Token: require the same token at every branch head.
	for i := 0; i < a.n; i++ {
		in := fmt.Sprintf("in%d", i)
		h, ok := qs[in].head()
		if !ok || !h.isTok || h.tok != it.tok {
			return nil
		}
		f.consume[in] = 1
	}
	f.label = "token"
	f.produce["out"] = append(f.produce["out"], it)
	return f
}

func (a *joinRRAuto) commit(*firing) { a.next_ = a.pendNext }

// splitColumnsAuto routes each sample of a row to the stripes covering
// its column, replicating overlap (Figure 10).
type splitColumnsAuto struct {
	node    *graph.Node
	stripes []kernel.Stripe
	dataW   int
	x       int
	pendX   int
}

func (a *splitColumnsAuto) next(qs map[string]*queue) *firing {
	it, ok := qs["in"].head()
	if !ok {
		return nil
	}
	f := &firing{
		consume: map[string]int{"in": 1},
		produce: make(map[string][]item),
		cycles:  fsmCycles,
	}
	a.pendX = a.x
	if it.isTok {
		f.label = "broadcast"
		if it.tok.Kind == token.EndOfLine || it.tok.Kind == token.EndOfFrame {
			a.pendX = 0
		}
		for i := range a.stripes {
			out := fmt.Sprintf("out%d", i)
			f.produce[out] = append(f.produce[out], it)
		}
		return f
	}
	f.label = "route"
	for i, s := range a.stripes {
		if a.x >= s.InStart && a.x < s.InEnd {
			out := fmt.Sprintf("out%d", i)
			f.produce[out] = append(f.produce[out], it)
		}
	}
	a.pendX = a.x + 1
	return f
}

func (a *splitColumnsAuto) commit(*firing) { a.x = a.pendX }

// joinColumnsAuto drains each branch's row segment (counts[i] data then
// that branch's EOL) in branch order, emitting scan-order data with one
// regenerated EOL per row; EOF forwards once collected from every
// branch.
type joinColumnsAuto struct {
	node   *graph.Node
	counts []int
	branch int
	got    int
	row    int64

	pendBranch int
	pendGot    int
	pendRow    int64
}

func (a *joinColumnsAuto) next(qs map[string]*queue) *firing {
	cur := fmt.Sprintf("in%d", a.branch)
	it, ok := qs[cur].head()
	if !ok {
		return nil
	}
	a.pendBranch, a.pendGot, a.pendRow = a.branch, a.got, a.row
	f := &firing{
		consume: map[string]int{},
		produce: make(map[string][]item),
		cycles:  fsmCycles,
	}
	if it.isTok {
		switch it.tok.Kind {
		case token.EndOfLine:
			if a.got != a.counts[a.branch] {
				return nil // malformed stream; stall visibly
			}
			f.label = "eol"
			f.consume[cur] = 1
			if a.branch == len(a.counts)-1 {
				f.produce["out"] = append(f.produce["out"], tokenItem(token.EOL(a.row)))
				a.pendRow = a.row + 1
			}
			a.pendBranch = (a.branch + 1) % len(a.counts)
			a.pendGot = 0
			return f
		case token.EndOfFrame:
			if a.branch != 0 || a.got != 0 {
				return nil
			}
			// Need EOF at every branch head.
			for i := range a.counts {
				in := fmt.Sprintf("in%d", i)
				h, ok := qs[in].head()
				if !ok || !h.isTok || h.tok.Kind != token.EndOfFrame {
					return nil
				}
				f.consume[in] = 1
			}
			f.label = "eof"
			f.produce["out"] = append(f.produce["out"], it)
			a.pendRow = 0
			return f
		default:
			f.label = "tok"
			f.consume[cur] = 1
			f.produce["out"] = append(f.produce["out"], it)
			return f
		}
	}
	if a.got >= a.counts[a.branch] {
		return nil // waiting for the branch's EOL
	}
	f.label = "join"
	f.consume[cur] = 1
	f.produce["out"] = append(f.produce["out"], it)
	a.pendGot = a.got + 1
	return f
}

func (a *joinColumnsAuto) commit(*firing) {
	a.branch, a.got, a.row = a.pendBranch, a.pendGot, a.pendRow
}

// replicateAuto broadcasts everything to every branch.
type replicateAuto struct {
	node *graph.Node
	n    int
}

func (a *replicateAuto) next(qs map[string]*queue) *firing {
	it, ok := qs["in"].head()
	if !ok {
		return nil
	}
	f := &firing{
		label:   "replicate",
		consume: map[string]int{"in": 1},
		produce: make(map[string][]item),
		cycles:  fsmCycles,
	}
	for i := 0; i < a.n; i++ {
		out := fmt.Sprintf("out%d", i)
		f.produce[out] = append(f.produce[out], it)
	}
	return f
}

func (a *replicateAuto) commit(*firing) {}

// insetAuto trims the item grid per its plan.
type insetAuto struct {
	node *graph.Node
	plan kernel.InsetPlan
	x, y int
	row  int64

	pendX, pendY int
	pendRow      int64
}

func (a *insetAuto) next(qs map[string]*queue) *firing {
	it, ok := qs["in"].head()
	if !ok {
		return nil
	}
	a.pendX, a.pendY, a.pendRow = a.x, a.y, a.row
	f := &firing{
		consume: map[string]int{"in": 1},
		produce: make(map[string][]item),
		cycles:  fsmCycles,
	}
	if it.isTok {
		switch it.tok.Kind {
		case token.EndOfLine:
			f.label = "eol"
			a.pendX, a.pendY = 0, a.y+1
		case token.EndOfFrame:
			f.label = "eof"
			f.produce["out"] = append(f.produce["out"], it)
			a.pendX, a.pendY, a.pendRow = 0, 0, 0
		default:
			f.label = "tok"
			f.produce["out"] = append(f.produce["out"], it)
		}
		return f
	}
	f.label = "inset"
	if keep, rowEnd := a.plan.Keep(a.x, a.y); keep {
		f.produce["out"] = append(f.produce["out"], it)
		if rowEnd {
			f.produce["out"] = append(f.produce["out"], tokenItem(token.EOL(a.row)))
			a.pendRow = a.row + 1
		}
	}
	a.pendX = a.x + 1
	return f
}

func (a *insetAuto) commit(*firing) { a.x, a.y, a.row = a.pendX, a.pendY, a.pendRow }

// padAuto grows the stream with zero items per its plan.
type padAuto struct {
	node    *graph.Node
	plan    kernel.PadPlan
	x, y    int
	row     int64
	topDone bool

	pendX, pendY int
	pendRow      int64
	pendTop      bool
}

func (a *padAuto) next(qs map[string]*queue) *firing {
	it, ok := qs["in"].head()
	if !ok {
		return nil
	}
	p := a.plan
	a.pendX, a.pendY, a.pendRow, a.pendTop = a.x, a.y, a.row, a.topDone
	f := &firing{
		consume: map[string]int{"in": 1},
		produce: make(map[string][]item),
		cycles:  fsmCycles,
	}
	zeroRow := func() {
		for i := 0; i < p.OutW(); i++ {
			f.produce["out"] = append(f.produce["out"], dataItem(1))
		}
		f.produce["out"] = append(f.produce["out"], tokenItem(token.EOL(a.pendRow)))
		a.pendRow++
	}
	if it.isTok {
		switch it.tok.Kind {
		case token.EndOfLine:
			f.label = "eol"
			for i := 0; i < p.R; i++ {
				f.produce["out"] = append(f.produce["out"], dataItem(1))
			}
			f.produce["out"] = append(f.produce["out"], tokenItem(token.EOL(a.pendRow)))
			a.pendRow++
			a.pendX, a.pendY = 0, a.y+1
		case token.EndOfFrame:
			f.label = "eof"
			for i := 0; i < p.B; i++ {
				zeroRow()
			}
			f.produce["out"] = append(f.produce["out"], it)
			a.pendX, a.pendY, a.pendRow, a.pendTop = 0, 0, 0, false
		default:
			f.label = "tok"
			f.produce["out"] = append(f.produce["out"], it)
		}
		return f
	}
	f.label = "pad"
	if !a.topDone {
		for i := 0; i < p.T; i++ {
			zeroRow()
		}
		a.pendTop = true
	}
	if a.x == 0 {
		for i := 0; i < p.L; i++ {
			f.produce["out"] = append(f.produce["out"], dataItem(1))
		}
	}
	f.produce["out"] = append(f.produce["out"], it)
	a.pendX = a.x + 1
	return f
}

func (a *padAuto) commit(*firing) {
	a.x, a.y, a.row, a.topDone = a.pendX, a.pendY, a.pendRow, a.pendTop
}

// feedbackAuto emits its initial items once, then passes through.
type feedbackAuto struct {
	node    *graph.Node
	initial int
	words   int64
	emitted bool
}

func (a *feedbackAuto) next(qs map[string]*queue) *firing {
	if !a.emitted {
		f := &firing{
			label:   "init",
			consume: map[string]int{},
			produce: make(map[string][]item),
			cycles:  fsmCycles,
		}
		for i := 0; i < a.initial; i++ {
			f.produce["out"] = append(f.produce["out"], dataItem(a.words))
		}
		return f
	}
	it, ok := qs["in"].head()
	if !ok {
		return nil
	}
	return &firing{
		label:   "pass",
		consume: map[string]int{"in": 1},
		produce: map[string][]item{"out": {it}},
		cycles:  fsmCycles,
	}
}

func (a *feedbackAuto) commit(*firing) { a.emitted = true }

// newAutomaton builds the automaton for a node.
func newAutomaton(n *graph.Node) (automaton, error) {
	switch n.Kind {
	case graph.KindBuffer:
		if plan, ways, ok := kernel.SharePlanOf(n); ok {
			return &shareAuto{node: n, plan: plan, ways: ways}, nil
		}
		return newBufferAuto(n)
	case graph.KindSplit:
		if stripes, ok := kernel.SplitColumnsStripes(n); ok {
			return &splitColumnsAuto{node: n, stripes: stripes, dataW: stripesWidth(stripes)}, nil
		}
		return &splitRRAuto{node: n, n: len(n.Outputs())}, nil
	case graph.KindJoin:
		if counts, ok := kernel.JoinColumnsCounts(n); ok {
			return &joinColumnsAuto{node: n, counts: counts}, nil
		}
		return &joinRRAuto{node: n, n: len(n.Inputs())}, nil
	case graph.KindReplicate:
		return &replicateAuto{node: n, n: len(n.Outputs())}, nil
	case graph.KindInset:
		plan, ok := kernel.InsetPlanOf(n)
		if !ok {
			return nil, fmt.Errorf("sim: %q has no inset plan", n.Name())
		}
		return &insetAuto{node: n, plan: plan}, nil
	case graph.KindPad:
		plan, ok := kernel.PadPlanOf(n)
		if !ok {
			return nil, fmt.Errorf("sim: %q has no pad plan", n.Name())
		}
		return &padAuto{node: n, plan: plan}, nil
	case graph.KindFeedback:
		init, _ := kernel.FeedbackInitial(n)
		return &feedbackAuto{node: n, initial: len(init), words: n.Output("out").Words()}, nil
	default:
		return newGenericAuto(n), nil
	}
}

func stripesWidth(stripes []kernel.Stripe) int {
	w := 0
	for _, s := range stripes {
		if s.InEnd > w {
			w = s.InEnd
		}
	}
	return w
}
