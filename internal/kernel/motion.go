package kernel

import (
	"fmt"
	"math"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/token"
)

// MotionSearch builds the paper's canonical *dynamic* kernel (§VII):
// a block-matching motion estimator whose per-block work varies with
// the data. For each k×k block of the current frame it runs a
// diamond-style refinement against the previous frame held in kernel
// state, stopping when the residual stops improving — so the iteration
// count, and with it the compute time, is data-dependent.
//
// The method declares a typical cost and a worst-case Bound; the
// compiler allocates the bound (analysis.AllocCycles) and the timing
// simulator draws actual costs from the node's cost model, raising a
// runtime resource exception whenever an invocation would exceed the
// bound. searchRange bounds the refinement and determines the bound:
// each refinement step costs ~3·k² cycles and at most searchRange steps
// run.
func MotionSearch(name string, k, searchRange int) *graph.Node {
	if k < 2 || searchRange < 1 {
		panic(fmt.Sprintf("kernel: invalid motion search k=%d range=%d", k, searchRange))
	}
	n := graph.NewNode(name, graph.KindKernel)
	n.CreateInput("in", geom.Sz(k, k), geom.St(k, k), geom.Off(0, 0))
	n.CreateOutput("mv", geom.Sz(2, 1), geom.St(2, 1))

	stepCost := int64(3 * k * k)
	typical := methodOverhead + stepCost*int64(searchRange)/2
	bound := methodOverhead + stepCost*int64(searchRange)
	m := n.RegisterMethod("search", typical, int64(2*k*k))
	m.Bound = bound
	n.RegisterMethodInput("search", "in")
	n.RegisterMethodOutput("search", "mv")

	// The end-of-frame token rolls the reference frame over; the token
	// then forwards on "mv" to keep downstream framing intact.
	n.RegisterMethod("endFrame", methodOverhead, 0)
	n.RegisterMethodInputToken("endFrame", "in", token.EndOfFrame, "")
	n.RegisterMethodForward("endFrame", "mv")

	// The default cost model mirrors the behavior's data-dependent
	// iteration count with a deterministic pseudo-random walk over the
	// same range; callers may override Costs["search"].
	n.Costs = map[string]graph.CostModel{
		"search": DefaultMotionCost(stepCost, searchRange),
	}

	n.Attrs["ktype"] = "motion"
	n.Attrs["kparams"] = fmt.Sprintf("%d,%d", k, searchRange)
	n.Behavior = &motionBehavior{k: k, searchRange: searchRange}
	return n
}

// DefaultMotionCost returns a deterministic per-invocation cost model:
// overhead plus between 1 and maxSteps refinement steps.
func DefaultMotionCost(stepCost int64, maxSteps int) graph.CostModel {
	return func(inv int64) int64 {
		x := uint64(inv)*6364136223846793005 + 1442695040888963407
		x ^= x >> 29
		steps := int64(x%uint64(maxSteps)) + 1
		return methodOverhead + stepCost*steps
	}
}

type motionBehavior struct {
	k           int
	searchRange int
	prev        []frame.Window // previous frame's blocks in scan order
	cur         []frame.Window
}

func (b *motionBehavior) Clone() graph.Behavior {
	return &motionBehavior{k: b.k, searchRange: b.searchRange}
}

func (b *motionBehavior) Invoke(method string, ctx graph.ExecContext) error {
	switch method {
	case "endFrame":
		b.prev, b.cur = b.cur, nil
		return nil
	case "search":
		// handled below
	default:
		return fmt.Errorf("kernel: motion search has no method %q", method)
	}
	block := ctx.Input("in").Clone()
	idx := len(b.cur)
	b.cur = append(b.cur, block)

	// Against the co-located block of the previous frame (zero if this
	// is the first frame), refine an offset estimate: a 1-D surrogate
	// of diamond search where the "offset" is a brightness shift and
	// iterations continue while the residual improves.
	var ref frame.Window
	if idx < len(b.prev) {
		ref = b.prev[idx]
	} else {
		ref = frame.NewWindow(b.k, b.k)
	}
	offset := 0.0
	best := residual(block, ref, offset)
	iters := 0
	for step := 0; step < b.searchRange; step++ {
		iters++
		improved := false
		for _, d := range []float64{1, -1} {
			if r := residual(block, ref, offset+d); r < best {
				best, offset = r, offset+d
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	mv := frame.Alloc(2, 1)
	mv.Set(0, 0, offset)
	mv.Set(1, 0, float64(iters))
	ctx.Emit("mv", mv)
	return nil
}

// residual is the sum of absolute differences between block and
// ref+shift.
func residual(block, ref frame.Window, shift float64) float64 {
	var sum float64
	for i := range block.Pix {
		sum += math.Abs(block.Pix[i] - (ref.Pix[i] + shift))
	}
	return sum
}
