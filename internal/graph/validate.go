package graph

import (
	"errors"
	"fmt"

	"blockpar/internal/token"
)

// Validate checks the structural invariants the compiler relies on:
//
//   - every kernel input is connected exactly once;
//   - every kernel output is connected at least once (outputs of
//     KindOutput nodes excepted — they are sinks);
//   - port geometry is positive;
//   - every method has at least one trigger, and token triggers name
//     declared token kinds;
//   - application inputs carry a frame size and a positive rate;
//   - custom tokens consumed anywhere are rate-bounded by a producer
//     upstream declaration (paper §II-C);
//   - the stream graph is acyclic unless the cycle passes through a
//     KindFeedback node (§III-D).
//
// It returns all problems found joined into one error, or nil.
func (g *Graph) Validate() error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	if len(g.nodes) == 0 {
		report("graph %q has no nodes", g.Name)
	}

	for _, n := range g.nodes {
		g.validateNode(n, report)
	}

	// Input connectivity.
	for _, n := range g.nodes {
		for _, p := range n.Inputs() {
			count := 0
			for _, e := range g.edges {
				if e.To == p {
					count++
				}
			}
			if count == 0 {
				report("input %s is unconnected", p)
			}
			if count > 1 {
				report("input %s has %d producers", p, count)
			}
		}
		for _, p := range n.Outputs() {
			if n.Kind == KindOutput {
				continue
			}
			if len(g.EdgesFrom(p)) == 0 {
				report("output %s is unconnected", p)
			}
		}
	}

	// Edge size agreement: an edge carries items of the producer's
	// output size; the consumer must expect the same item size unless
	// a buffer will re-chunk (buffers are the mechanism for that, so
	// direct mismatches are legal pre-transformation — the analysis
	// flags them; here we only require both ends positive).
	for _, e := range g.edges {
		if !e.From.Size.IsPositive() || !e.To.Size.IsPositive() {
			report("edge %s has non-positive port size", e)
		}
	}

	// Dependency edges must reference graph nodes.
	for _, d := range g.deps {
		if g.nodesByName[d.From.Name()] != d.From || g.nodesByName[d.To.Name()] != d.To {
			report("dependency edge %s -> %s references foreign node", d.From.Name(), d.To.Name())
		}
	}

	// Declared connection groups must reference graph nodes. Their edges
	// may have been rewired by transformations (a lowered share group, a
	// spliced conversion kernel), so edge membership is not re-checked
	// here — AddConn enforces it at declaration time.
	for _, c := range g.conns {
		if g.nodesByName[c.From.node.Name()] != c.From.node {
			report("connection %q: producer %s references foreign node", c.Name, c.From)
		}
		for _, p := range c.To {
			if g.nodesByName[p.node.Name()] != p.node {
				report("connection %q: consumer %s references foreign node", c.Name, p)
			}
		}
	}

	if err := g.checkAcyclic(); err != nil {
		errs = append(errs, err)
	}

	g.checkCustomTokenRates(report)

	return errors.Join(errs...)
}

func (g *Graph) validateNode(n *Node, report func(string, ...any)) {
	for _, p := range append(append([]*Port{}, n.Inputs()...), n.Outputs()...) {
		if !p.Size.IsPositive() {
			report("port %s has non-positive size %v", p, p.Size)
		}
		if !p.Step.IsPositive() {
			report("port %s has non-positive step %v", p, p.Step)
		}
	}
	switch n.Kind {
	case KindInput:
		if !n.FrameSize.IsPositive() {
			report("application input %q has no frame size", n.Name())
		}
		if n.Rate.Num <= 0 {
			report("application input %q has non-positive rate %v", n.Name(), n.Rate)
		}
		if len(n.Outputs()) != 1 || len(n.Inputs()) != 0 {
			report("application input %q must have exactly one output and no inputs", n.Name())
		}
	case KindOutput:
		if len(n.Inputs()) != 1 || len(n.Outputs()) != 0 {
			report("application output %q must have exactly one input and no outputs", n.Name())
		}
	case KindBoundary:
		// A boundary shim is a pure endpoint: exactly one port, driven by
		// a Runner rather than triggered methods.
		src := len(n.Outputs()) == 1 && len(n.Inputs()) == 0
		sink := len(n.Inputs()) == 1 && len(n.Outputs()) == 0
		if !src && !sink {
			report("boundary %q must have exactly one port", n.Name())
		}
		if _, ok := RunnerBehavior(n); !ok {
			report("boundary %q has no Runner behavior", n.Name())
		}
	default:
		if len(n.Methods()) == 0 {
			report("kernel %q has no methods", n.Name())
		}
	}
	for _, m := range n.Methods() {
		if len(m.Triggers) == 0 {
			report("method %s.%s has no triggers", n.Name(), m.Name)
		}
		if m.Cycles < 0 || m.Memory < 0 {
			report("method %s.%s has negative resources", n.Name(), m.Name)
		}
		for _, t := range m.Triggers {
			if t.Token == token.Custom && t.TokenName == "" {
				report("method %s.%s custom-token trigger missing token name", n.Name(), m.Name)
			}
		}
	}
}

// checkAcyclic verifies the stream graph has no cycles except through
// feedback nodes.
func (g *Graph) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*Node]int)
	var cyc *Node
	var visit func(n *Node) bool
	visit = func(n *Node) bool {
		color[n] = gray
		for _, e := range g.OutEdges(n) {
			next := e.To.node
			// Feedback nodes break cycles by construction: their
			// downstream traversal is skipped.
			if next.Kind == KindFeedback {
				continue
			}
			switch color[next] {
			case gray:
				cyc = next
				return false
			case white:
				if !visit(next) {
					return false
				}
			}
		}
		color[n] = black
		return true
	}
	for _, n := range g.nodes {
		if color[n] == white {
			if !visit(n) {
				return fmt.Errorf("graph has a cycle through %q without a feedback kernel", cyc.Name())
			}
		}
	}
	return nil
}

// checkCustomTokenRates requires every custom-token trigger to have a
// rate-declaring producer somewhere in the graph.
func (g *Graph) checkCustomTokenRates(report func(string, ...any)) {
	declared := make(map[string]bool)
	for _, n := range g.nodes {
		for name := range n.TokenRates {
			declared[name] = true
		}
	}
	for _, n := range g.nodes {
		for _, m := range n.Methods() {
			for _, t := range m.Triggers {
				if t.Token == token.Custom && t.TokenName != "" && !declared[t.TokenName] {
					report("method %s.%s consumes custom token %q but no kernel declares its rate",
						n.Name(), m.Name, t.TokenName)
				}
			}
		}
	}
}
