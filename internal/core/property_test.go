package core

import (
	"testing"
	"testing/quick"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/graph"
	"blockpar/internal/kernel"
	"blockpar/internal/machine"
	"blockpar/internal/runtime"
	"blockpar/internal/transform"
)

// TestCompiledConvEquivalenceQuick is the system-level property test:
// for random frame sizes, kernel sizes, and rates, the fully compiled
// (buffered + parallelized) convolution application produces exactly
// the golden result.
func TestCompiledConvEquivalenceQuick(t *testing.T) {
	prop := func(w8, h8, k1, rate8, seed uint8) bool {
		k := 3
		if k1%2 == 1 {
			k = 5
		}
		w := k + 4 + int(w8%24)
		h := k + 2 + int(h8%16)
		rate := geom.F(int64(rate8%100)*20_000+100_000, int64(w*h))
		coeff := frame.LCG(int64(seed), k, k)

		g := graph.New("prop-conv")
		in := g.AddInput("Input", geom.Sz(w, h), geom.Sz(1, 1), rate)
		conv := g.Add(kernel.Convolution("Conv", k))
		coeffIn := g.AddInput("Coeff", geom.Sz(k, k), geom.Sz(k, k), rate)
		out := g.AddOutput("Output", geom.Sz(1, 1))
		g.Connect(in, "out", conv, "in")
		g.Connect(coeffIn, "out", conv, "coeff")
		g.Connect(conv, "out", out, "in")

		if _, err := Compile(g, DefaultConfig()); err != nil {
			t.Logf("compile(%dx%d k=%d): %v", w, h, k, err)
			return false
		}
		res, err := runtime.Run(g, runtime.Options{
			Frames: 1,
			Sources: map[string]frame.Generator{
				"Input": frame.LCG,
				"Coeff": func(seq int64, fw, fh int) frame.Window { return coeff.Clone() },
			},
		})
		if err != nil {
			t.Logf("run(%dx%d k=%d): %v", w, h, k, err)
			return false
		}
		want := frame.Convolve(frame.LCG(0, w, h), coeff)
		got := res.DataWindows("Output")
		if len(got) != len(want.Pix) {
			t.Logf("%dx%d k=%d: %d outputs, want %d", w, h, k, len(got), len(want.Pix))
			return false
		}
		for i, ww := range got {
			if ww.Value() != want.Pix[i] {
				t.Logf("%dx%d k=%d: sample %d = %v, want %v", w, h, k, i, ww.Value(), want.Pix[i])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestCompiledMedianSubtractEquivalenceQuick fuzzes the two-branch
// diamond (median vs conv into subtract) with both alignment policies.
func TestCompiledMedianSubtractEquivalenceQuick(t *testing.T) {
	prop := func(w8, h8, pol, seed uint8) bool {
		w := 12 + int(w8%16)
		h := 10 + int(h8%12)
		rate := geom.F(400_000, int64(w*h))
		coeff := frame.LCG(int64(seed), 5, 5)
		for i := range coeff.Pix {
			coeff.Pix[i] /= 256
		}

		g := graph.New("prop-diamond")
		in := g.AddInput("Input", geom.Sz(w, h), geom.Sz(1, 1), rate)
		med := g.Add(kernel.Median("Med", 3))
		conv := g.Add(kernel.Convolution("Conv", 5))
		coeffIn := g.AddInput("Coeff", geom.Sz(5, 5), geom.Sz(5, 5), rate)
		sub := g.Add(kernel.Subtract("Sub"))
		out := g.AddOutput("Output", geom.Sz(1, 1))
		g.Connect(in, "out", med, "in")
		g.Connect(in, "out", conv, "in")
		g.Connect(coeffIn, "out", conv, "coeff")
		g.Connect(med, "out", sub, "in0")
		g.Connect(conv, "out", sub, "in1")
		g.Connect(sub, "out", out, "in")

		cfg := DefaultConfig()
		usePad := pol%2 == 1
		if usePad {
			cfg.Align = transform.PadInputs
		}
		cfg.Machine = machine.Embedded()
		if _, err := Compile(g, cfg); err != nil {
			t.Logf("compile %dx%d pad=%v: %v", w, h, usePad, err)
			return false
		}
		res, err := runtime.Run(g, runtime.Options{
			Frames: 1,
			Sources: map[string]frame.Generator{
				"Input": frame.LCG,
				"Coeff": func(seq int64, fw, fh int) frame.Window { return coeff.Clone() },
			},
		})
		if err != nil {
			t.Logf("run %dx%d pad=%v: %v", w, h, usePad, err)
			return false
		}
		img := frame.LCG(0, w, h)
		var want frame.Window
		if usePad {
			want = frame.Subtract(frame.Median(img, 3),
				frame.Convolve(frame.Pad(img, 1, 1, 1, 1), coeff))
		} else {
			want = frame.Subtract(frame.Trim(frame.Median(img, 3), 1, 1, 1, 1),
				frame.Convolve(img, coeff))
		}
		got := res.DataWindows("Output")
		if len(got) != len(want.Pix) {
			t.Logf("%dx%d pad=%v: %d outputs, want %d", w, h, usePad, len(got), len(want.Pix))
			return false
		}
		for i, ww := range got {
			if d := ww.Value() - want.Pix[i]; d > 1e-9 || d < -1e-9 {
				t.Logf("%dx%d pad=%v: sample %d = %v, want %v", w, h, usePad, i, ww.Value(), want.Pix[i])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
