// Package graph defines the block-parallel application description
// (paper §II): a graph of computation kernels connected by data stream
// channels, with parameterized inputs/outputs, multiple methods per
// kernel triggered by data or control tokens, replicated inputs, and
// data-dependency edges that limit parallelism.
package graph

import (
	"fmt"

	"blockpar/internal/frame"
	"blockpar/internal/geom"
	"blockpar/internal/token"
)

// Dir distinguishes input from output ports.
type Dir int

const (
	// In marks an input port.
	In Dir = iota
	// Out marks an output port.
	Out
)

func (d Dir) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// NodeKind classifies nodes. Regular kernels are written by the
// programmer; the remaining kinds are inserted by the compiler's
// automatic transformations and are ordinary kernels semantically — the
// kind exists so analyses, mappings, and tests can recognize them.
type NodeKind int

const (
	// KindKernel is a programmer-written computation kernel.
	KindKernel NodeKind = iota
	// KindInput is an application input (carries size and rate).
	KindInput
	// KindOutput is an application output sink.
	KindOutput
	// KindBuffer is a compiler-inserted 2-D circular buffer (§III-B).
	KindBuffer
	// KindSplit distributes data to parallelized kernel instances (§IV).
	KindSplit
	// KindJoin collects data from parallelized kernel instances (§IV).
	KindJoin
	// KindReplicate copies replicated inputs to every instance (§IV-A).
	KindReplicate
	// KindInset trims output halos for alignment (§III-C).
	KindInset
	// KindPad zero-pads streams for alignment (§III-C).
	KindPad
	// KindFeedback breaks feedback loops and provides initial values
	// (§III-D).
	KindFeedback
	// KindBoundary terminates a cut edge when a graph is partitioned
	// across workers: a boundary source (one output, no inputs) injects
	// the item stream arriving from the peer partition, and a boundary
	// sink (one input, no outputs) drains the stream headed to it. Both
	// carry a Runner behavior supplied by the transport.
	KindBoundary
)

var nodeKindNames = map[NodeKind]string{
	KindKernel:    "kernel",
	KindInput:     "input",
	KindOutput:    "output",
	KindBuffer:    "buffer",
	KindSplit:     "split",
	KindJoin:      "join",
	KindReplicate: "replicate",
	KindInset:     "inset",
	KindPad:       "pad",
	KindFeedback:  "feedback",
	KindBoundary:  "boundary",
}

func (k NodeKind) String() string {
	if s, ok := nodeKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// Port is a parameterized kernel input or output (paper §II-A): a
// window size, a step describing how far the window advances per
// iteration, and (for inputs) the offset from input data to the output
// it contributes to. Inputs may be replicated: under parallelization
// their data is copied to every instance instead of distributed.
type Port struct {
	node *Node

	Name string
	Dir  Dir
	Size geom.Size
	Step geom.Step
	// Offset is the input→output displacement (inputs only). It may be
	// fractional for downsampling kernels.
	Offset geom.Offset
	// Replicated marks inputs whose data is copied, not split, when the
	// kernel is parallelized (e.g. convolution coefficients).
	Replicated bool
	// Elem declares the element kind of the stream this port produces.
	// It is authoritative only on application inputs (KindInput "out"
	// ports), where the zero value means float64; everywhere else the
	// flowing kind is derived by propagation (analysis.ElemKinds) from
	// the inputs and each behavior's ElemTyped constraints.
	Elem frame.Kind
}

// Node returns the port's owning node.
func (p *Port) Node() *Node { return p.node }

// Words returns the channel words moved per item on this port, used for
// read/write cost accounting.
func (p *Port) Words() int64 { return int64(p.Size.Area()) }

func (p *Port) String() string {
	return fmt.Sprintf("%s.%s", p.node.Name(), p.Name)
}

// Trigger names one input a method needs, optionally gated on a control
// token kind instead of data.
type Trigger struct {
	Input string
	// Token is token.None for data-triggered methods.
	Token token.Kind
	// TokenName selects a specific custom token.
	TokenName string
}

// IsData reports whether the trigger fires on data (not a token).
func (t Trigger) IsData() bool { return t.Token == token.None }

// Method is a computation method of a kernel (paper §II-B): it fires
// when every trigger input has a matching item, consumes those items,
// runs for Cycles, and may emit on its registered outputs. Methods of a
// kernel share the kernel's private state.
type Method struct {
	Name string
	// Cycles is the compute cost per invocation. For dynamic methods
	// (Bound > 0) it is the typical cost; the actual per-invocation
	// cost comes from the node's cost model.
	Cycles int64
	// Bound, when positive, marks the method dynamic: its per-
	// invocation cost varies at runtime, and Bound is the worst-case
	// allocation the compiler budgets for (the §VII extension for
	// kernels like motion-vector search). An invocation that would
	// exceed Bound is truncated and raises a runtime resource
	// exception in the simulator.
	Bound int64
	// Memory is the private state in words this method requires.
	Memory   int64
	Triggers []Trigger
	// Outputs are the ports the method emits one data item on per
	// firing (plus any consumed control tokens, in order).
	Outputs []string
	// ForwardOnly are ports that receive the consumed control tokens
	// but no data — for token-triggered methods that update state
	// without emitting, yet must keep downstream framing intact (e.g.
	// a reference-frame rollover on end-of-frame).
	ForwardOnly []string
}

// AllocCycles returns the cycles the compiler allocates per
// invocation: the declared bound for dynamic methods, the fixed cost
// otherwise.
func (m *Method) AllocCycles() int64 {
	if m.Bound > 0 {
		return m.Bound
	}
	return m.Cycles
}

// Dynamic reports whether the method's cost varies at runtime.
func (m *Method) Dynamic() bool { return m.Bound > 0 }

// CostModel returns a dynamic method's actual compute cycles for its
// n-th invocation (counted from zero within the stream). Models must be
// deterministic so simulations are reproducible.
type CostModel func(invocation int64) int64

// DataTriggers returns the subset of triggers that fire on data.
func (m *Method) DataTriggers() []Trigger {
	var out []Trigger
	for _, t := range m.Triggers {
		if t.IsData() {
			out = append(out, t)
		}
	}
	return out
}

// TriggersInput reports whether the method is triggered by the named
// input (with any token kind).
func (m *Method) TriggersInput(name string) bool {
	for _, t := range m.Triggers {
		if t.Input == name {
			return true
		}
	}
	return false
}

// Node is a kernel instance in the application graph.
type Node struct {
	name string
	// Base is the original kernel name before parallelization cloning
	// ("5x5 Conv" for instance "5x5 Conv_2").
	Base string
	// Instance is the parallel instance index (0 for unreplicated).
	Instance int
	Kind     NodeKind

	inputs              []*Port
	outputs             []*Port
	inByName, outByName map[string]*Port

	methods       []*Method
	methodsByName map[string]*Method

	// Behavior is the functional implementation used by the runtime
	// and, for FSM kernels, consulted by transform tests. It may be nil
	// for analysis-only graphs.
	Behavior Behavior

	// FrameSize and Rate describe application inputs (KindInput): the
	// per-frame data extent and the hard real-time frame rate.
	FrameSize geom.Size
	Rate      geom.Frac

	// TokenRates bounds custom-token emission: tokens per frame by
	// token name (paper §II-C requires kernels to declare the maximum
	// rate of the control tokens they generate).
	TokenRates map[string]geom.Frac

	// Costs supplies the actual per-invocation cycles of dynamic
	// methods (those with Bound > 0), keyed by method name. Models
	// must be deterministic; the simulator truncates invocations at
	// the method's Bound and records a resource exception.
	Costs map[string]CostModel

	// NoMultiplex excludes the node from greedy time-multiplexing; the
	// compiler sets it on initial input buffers (paper Figure 12: "the
	// initial input buffers are not multiplexed because they may block
	// the input").
	NoMultiplex bool

	// Attrs carries free-form annotations used by reports and DOT.
	Attrs map[string]string
}

// NewNode creates a node of the given kind.
func NewNode(name string, kind NodeKind) *Node {
	return &Node{
		name:          name,
		Base:          name,
		Kind:          kind,
		inByName:      make(map[string]*Port),
		outByName:     make(map[string]*Port),
		methodsByName: make(map[string]*Method),
		Attrs:         make(map[string]string),
	}
}

// Name returns the node's unique name within its graph.
func (n *Node) Name() string { return n.name }

// SetName renames the node (used by the parallelizer for instances).
func (n *Node) SetName(name string) { n.name = name }

// CreateInput declares a parameterized input port.
func (n *Node) CreateInput(name string, size geom.Size, step geom.Step, off geom.Offset) *Port {
	if _, dup := n.inByName[name]; dup {
		panic(fmt.Sprintf("graph: duplicate input %q on %q", name, n.name))
	}
	p := &Port{node: n, Name: name, Dir: In, Size: size, Step: step, Offset: off}
	n.inputs = append(n.inputs, p)
	n.inByName[name] = p
	return p
}

// CreateOutput declares a parameterized output port.
func (n *Node) CreateOutput(name string, size geom.Size, step geom.Step) *Port {
	if _, dup := n.outByName[name]; dup {
		panic(fmt.Sprintf("graph: duplicate output %q on %q", name, n.name))
	}
	p := &Port{node: n, Name: name, Dir: Out, Size: size, Step: step}
	n.outputs = append(n.outputs, p)
	n.outByName[name] = p
	return p
}

// RegisterMethod declares a method with its per-invocation compute
// cycles and private memory words (paper Figure 6).
func (n *Node) RegisterMethod(name string, cycles, memory int64) *Method {
	if _, dup := n.methodsByName[name]; dup {
		panic(fmt.Sprintf("graph: duplicate method %q on %q", name, n.name))
	}
	m := &Method{Name: name, Cycles: cycles, Memory: memory}
	n.methods = append(n.methods, m)
	n.methodsByName[name] = m
	return m
}

// RegisterMethodInput maps a data-triggered input onto a method.
func (n *Node) RegisterMethodInput(method, input string) {
	n.registerTrigger(method, Trigger{Input: input})
}

// RegisterMethodInputToken maps a token-triggered input onto a method.
func (n *Node) RegisterMethodInputToken(method, input string, kind token.Kind, tokenName string) {
	n.registerTrigger(method, Trigger{Input: input, Token: kind, TokenName: tokenName})
}

func (n *Node) registerTrigger(method string, t Trigger) {
	m := n.mustMethod(method)
	if _, ok := n.inByName[t.Input]; !ok {
		panic(fmt.Sprintf("graph: method %q references unknown input %q on %q", method, t.Input, n.name))
	}
	m.Triggers = append(m.Triggers, t)
}

// RegisterMethodOutput maps an output onto a method.
func (n *Node) RegisterMethodOutput(method, output string) {
	m := n.mustMethod(method)
	if _, ok := n.outByName[output]; !ok {
		panic(fmt.Sprintf("graph: method %q references unknown output %q on %q", method, output, n.name))
	}
	m.Outputs = append(m.Outputs, output)
}

// RegisterMethodForward marks an output as token-forward-only for the
// method: consumed control tokens pass through, but the method emits no
// data on it.
func (n *Node) RegisterMethodForward(method, output string) {
	m := n.mustMethod(method)
	if _, ok := n.outByName[output]; !ok {
		panic(fmt.Sprintf("graph: method %q references unknown output %q on %q", method, output, n.name))
	}
	m.ForwardOnly = append(m.ForwardOnly, output)
}

func (n *Node) mustMethod(name string) *Method {
	m, ok := n.methodsByName[name]
	if !ok {
		panic(fmt.Sprintf("graph: unknown method %q on %q", name, n.name))
	}
	return m
}

// Input returns the named input port, or nil.
func (n *Node) Input(name string) *Port { return n.inByName[name] }

// Output returns the named output port, or nil.
func (n *Node) Output(name string) *Port { return n.outByName[name] }

// Inputs returns the input ports in declaration order.
func (n *Node) Inputs() []*Port { return n.inputs }

// Outputs returns the output ports in declaration order.
func (n *Node) Outputs() []*Port { return n.outputs }

// Methods returns the methods in declaration order.
func (n *Node) Methods() []*Method { return n.methods }

// Method returns the named method, or nil.
func (n *Node) Method(name string) *Method { return n.methodsByName[name] }

// Memory returns the total private memory of the node: the max over
// methods (they share kernel state; the paper registers the state on
// the methods that use it) plus one iteration of buffering per port
// (paper Figure 5: "inputs and outputs contain implicit buffer space
// for one iteration").
func (n *Node) Memory() int64 {
	var state int64
	for _, m := range n.methods {
		if m.Memory > state {
			state = m.Memory
		}
	}
	var ports int64
	for _, p := range n.inputs {
		ports += p.Words()
	}
	for _, p := range n.outputs {
		ports += p.Words()
	}
	return state + ports
}

// MethodForTrigger returns the first method triggered by the given
// input and token kind/name, or nil if the token is unhandled (in
// which case the runtime forwards it downstream, paper §II-C).
func (n *Node) MethodForTrigger(input string, kind token.Kind, tokenName string) *Method {
	for _, m := range n.methods {
		for _, t := range m.Triggers {
			if t.Input != input {
				continue
			}
			if t.Token != kind {
				continue
			}
			if kind == token.Custom && t.TokenName != tokenName {
				continue
			}
			return m
		}
	}
	return nil
}

func (n *Node) String() string {
	return fmt.Sprintf("%s(%s)", n.name, n.Kind)
}

// Behavior is the functional implementation of a kernel, executed by
// the goroutine runtime. Methods of a kernel share the Behavior
// instance's private state; parallel instances get fresh state via
// Clone. A Behavior implements either Invoker (ordinary kernels driven
// by the generic method-trigger loop) or Runner (FSM kernels that
// drive their own stream loop; see runner.go).
type Behavior interface {
	// Clone returns a Behavior with fresh private state for a new
	// parallel instance of the kernel.
	Clone() Behavior
}

// Invoker is the Behavior flavor of ordinary kernels: the runtime fires
// methods when their trigger inputs have matching items and calls
// Invoke once per firing.
type Invoker interface {
	Behavior
	// Invoke runs the named method. Input items that triggered the
	// invocation are available from ctx; outputs are emitted to ctx.
	Invoke(method string, ctx ExecContext) error
}

// ExecContext is what a Behavior sees during one method invocation.
type ExecContext interface {
	// Input returns the data window consumed from the named input for
	// this invocation. It panics if the input was token-triggered.
	Input(name string) frame.Window
	// Token returns the control token consumed from the named input
	// for this invocation (zero Token for data triggers).
	Token(name string) token.Token
	// Emit writes one data item to the named output.
	Emit(output string, w frame.Window)
	// EmitToken writes a control token to the named output. EOL/EOF
	// forwarding of unhandled tokens is automatic; EmitToken exists
	// for kernels that generate custom tokens.
	EmitToken(output string, t token.Token)
}

// ElemTyped is implemented by Behaviors with element-kind constraints
// or conversions: kernels that require specific input kinds (a
// convolution's float-only multiply-accumulate) or produce a kind other
// than the one arriving (a histogram's float64 counts, a conversion
// kernel's target kind). Behaviors that do not implement it are
// elem-polymorphic pass-throughs: they accept any kind and emit the
// (widest) kind of their data inputs. The contract is descriptive — the
// declared kinds must match what the behavior actually allocates — and
// the compiler inserts conversion kernels wherever the flowing kind is
// not accepted.
type ElemTyped interface {
	// ElemAccepts reports whether the named input handles streams of
	// kind k without conversion.
	ElemAccepts(input string, k frame.Kind) bool
	// ElemOut returns the kind emitted on the named output when the
	// data inputs carry kind in.
	ElemOut(output string, in frame.Kind) frame.Kind
}

// BatchAware is implemented by Behaviors whose listed inputs accept row
// batches (Batch descriptors with N > 1): the executor delivers whole
// row batches to them instead of splitting at the edge, and the kernel
// runs one firing covering the batch's N logical invocations. A
// behavior that accepts batches on an input must produce, per batch,
// the exact logical output stream that N scalar firings would — the
// conformance suite diffs the two.
type BatchAware interface {
	// AcceptsBatch reports whether the named input handles batches.
	AcceptsBatch(input string) bool
}

// BatchContext is the optional ExecContext extension batch-aware
// Invoker kernels use: contexts that can carry batches (the runtime
// driver) implement it; the sequential oracle and test mocks need not,
// and kernels fall back to the scalar path when the assertion fails or
// the input's batch has N <= 1.
type BatchContext interface {
	// Batch returns the batch descriptor of the item consumed from the
	// named input; the zero Batch for plain items.
	Batch(input string) Batch
	// EmitBatch writes one batched data item to the named output (N <= 1
	// degrades to Emit).
	EmitBatch(output string, w frame.Window, b Batch)
}
