package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"blockpar/internal/frame"
)

// MsgType identifies one frame kind on a cluster connection.
type MsgType uint8

// The frame catalogue. Frontend → worker: Hello, EnsurePipeline,
// OpenSession, OpenPartition, Feed, CloseSession, Ping. Worker →
// frontend: Welcome, PipelineReady, SessionOpened, Result, Credit,
// SessionClosed, Goaway, Pong. Error flows both ways, and so do the
// cut-edge streams of a partitioned session (EdgeFrame, EdgeCredit),
// relayed between workers by the frontend.
const (
	TypeHello MsgType = iota + 1
	TypeWelcome
	TypeEnsurePipeline
	TypePipelineReady
	TypeOpenSession
	TypeSessionOpened
	TypeFeed
	TypeResult
	TypeCredit
	TypeCloseSession
	TypeSessionClosed
	TypeError
	TypePing
	TypePong
	TypeGoaway
	TypeOpenPartition
	TypeEdgeFrame
	TypeEdgeCredit
	TypeRegister
	TypeRegisterAck
	TypeHeartbeat
	TypeDeregister
	TypeReopenPartition
)

func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeWelcome:
		return "welcome"
	case TypeEnsurePipeline:
		return "ensure-pipeline"
	case TypePipelineReady:
		return "pipeline-ready"
	case TypeOpenSession:
		return "open-session"
	case TypeSessionOpened:
		return "session-opened"
	case TypeFeed:
		return "feed"
	case TypeResult:
		return "result"
	case TypeCredit:
		return "credit"
	case TypeCloseSession:
		return "close-session"
	case TypeSessionClosed:
		return "session-closed"
	case TypeError:
		return "error"
	case TypePing:
		return "ping"
	case TypePong:
		return "pong"
	case TypeGoaway:
		return "goaway"
	case TypeOpenPartition:
		return "open-partition"
	case TypeEdgeFrame:
		return "edge-frame"
	case TypeEdgeCredit:
		return "edge-credit"
	case TypeRegister:
		return "register"
	case TypeRegisterAck:
		return "register-ack"
	case TypeHeartbeat:
		return "heartbeat"
	case TypeDeregister:
		return "deregister"
	case TypeReopenPartition:
		return "reopen-partition"
	default:
		return "unknown"
	}
}

// Msg is one decoded frame.
type Msg interface {
	Type() MsgType
	// append encodes the payload (everything after the type byte).
	append(b []byte) []byte
	// decode parses the payload, leaving the reader fully consumed.
	decode(r *reader)
}

// Hello opens a connection (frontend → worker): magic plus protocol
// version, refused on mismatch before anything else is parsed.
type Hello struct {
	Version uint16
}

func (*Hello) Type() MsgType { return TypeHello }
func (m *Hello) append(b []byte) []byte {
	b = appendU32(b, Magic)
	return appendU16(b, m.Version)
}
func (m *Hello) decode(r *reader) {
	if magic := r.u32("hello magic"); r.err == nil && magic != Magic {
		r.err = corruptf("bad magic %#x", magic)
		return
	}
	m.Version = r.u16("hello version")
}

// Welcome acknowledges the handshake (worker → frontend) and inventories
// the worker's already-compiled pipelines.
type Welcome struct {
	Version   uint16
	Worker    string
	Pipelines []string
}

func (*Welcome) Type() MsgType { return TypeWelcome }
func (m *Welcome) append(b []byte) []byte {
	b = appendU16(b, m.Version)
	b = appendStr(b, m.Worker)
	b = appendU32(b, uint32(len(m.Pipelines)))
	for _, p := range m.Pipelines {
		b = appendStr(b, p)
	}
	return b
}
func (m *Welcome) decode(r *reader) {
	m.Version = r.u16("welcome version")
	m.Worker = r.str("welcome worker")
	n := int(r.u32("welcome pipeline count"))
	if r.err != nil {
		return
	}
	if n > maxStr {
		r.err = corruptf("welcome pipeline count %d out of range", n)
		return
	}
	for i := 0; i < n && r.err == nil; i++ {
		m.Pipelines = append(m.Pipelines, r.str("welcome pipeline"))
	}
}

// EnsurePipeline asks the worker to make a pipeline available before a
// session opens on it: by local registry lookup, by compiling the
// attached JSON descriptor, or by compiling the named suite benchmark.
type EnsurePipeline struct {
	ID string
	// Source mirrors serve.Pipeline.Source ("suite" or "json").
	Source string
	// Desc carries the JSON descriptor when Source is "json".
	Desc []byte
}

func (*EnsurePipeline) Type() MsgType { return TypeEnsurePipeline }
func (m *EnsurePipeline) append(b []byte) []byte {
	b = appendStr(b, m.ID)
	b = appendStr(b, m.Source)
	return appendBytes(b, m.Desc)
}
func (m *EnsurePipeline) decode(r *reader) {
	m.ID = r.str("ensure id")
	m.Source = r.str("ensure source")
	m.Desc = r.bytes("ensure descriptor")
}

// PipelineReady answers EnsurePipeline.
type PipelineReady struct {
	ID  string
	Err string
}

func (*PipelineReady) Type() MsgType { return TypePipelineReady }
func (m *PipelineReady) append(b []byte) []byte {
	b = appendStr(b, m.ID)
	return appendStr(b, m.Err)
}
func (m *PipelineReady) decode(r *reader) {
	m.ID = r.str("ready id")
	m.Err = r.str("ready err")
}

// OpenSession places a streaming session on the worker. SID is chosen
// by the frontend and namespaces every session-scoped frame that
// follows; MaxInFlight is the credit budget (mirroring the runtime's
// bounded frame queue). DeadlineMs, when nonzero, is a wall-clock
// budget for the whole session: the worker aborts the session with a
// typed error once it expires, so a stuck replay or an abandoned
// frontend can never pin worker state forever.
type OpenSession struct {
	SID         uint64
	Pipeline    string
	MaxInFlight uint32
	DeadlineMs  uint32
}

func (*OpenSession) Type() MsgType { return TypeOpenSession }
func (m *OpenSession) append(b []byte) []byte {
	b = appendU64(b, m.SID)
	b = appendStr(b, m.Pipeline)
	b = appendU32(b, m.MaxInFlight)
	return appendU32(b, m.DeadlineMs)
}
func (m *OpenSession) decode(r *reader) {
	m.SID = r.u64("open sid")
	m.Pipeline = r.str("open pipeline")
	m.MaxInFlight = r.u32("open max-in-flight")
	m.DeadlineMs = r.u32("open deadline-ms")
}

// SessionOpened answers OpenSession.
type SessionOpened struct {
	SID uint64
	Err string
}

func (*SessionOpened) Type() MsgType { return TypeSessionOpened }
func (m *SessionOpened) append(b []byte) []byte {
	b = appendU64(b, m.SID)
	return appendStr(b, m.Err)
}
func (m *SessionOpened) decode(r *reader) {
	m.SID = r.u64("opened sid")
	m.Err = r.str("opened err")
}

// NamedWindow pairs an input name with its frame window.
type NamedWindow struct {
	Name string
	Win  frame.Window
}

// Feed delivers one frame's explicit inputs; inputs absent from the
// list are generated worker-side from the pipeline's sources, exactly
// like a local session. Seq is the frontend's feed index for the
// session and must match the worker's, or the session is torn down.
type Feed struct {
	SID    uint64
	Seq    int64
	Inputs []NamedWindow
}

func (*Feed) Type() MsgType { return TypeFeed }
func (m *Feed) append(b []byte) []byte {
	b = appendU64(b, m.SID)
	b = appendI64(b, m.Seq)
	b = appendU16(b, uint16(len(m.Inputs)))
	for _, in := range m.Inputs {
		b = appendStr(b, in.Name)
		b = AppendWindow(b, in.Win)
	}
	return b
}
func (m *Feed) decode(r *reader) {
	m.SID = r.u64("feed sid")
	m.Seq = r.i64("feed seq")
	n := int(r.u16("feed input count"))
	for i := 0; i < n && r.err == nil; i++ {
		name := r.str("feed input name")
		win := decodeWindow(r)
		m.Inputs = append(m.Inputs, NamedWindow{Name: name, Win: win})
	}
	if r.err != nil {
		releaseWindows(m.Inputs)
		m.Inputs = nil
	}
}

// NamedWindows pairs an output name with its windows for one frame.
type NamedWindows struct {
	Name string
	Wins []frame.Window
}

// Result carries one completed frame's outputs back to the frontend:
// for every application output, the data windows it produced for frame
// Seq, in stream order.
type Result struct {
	SID     uint64
	Seq     int64
	Outputs []NamedWindows
}

func (*Result) Type() MsgType { return TypeResult }
func (m *Result) append(b []byte) []byte {
	b = appendU64(b, m.SID)
	b = appendI64(b, m.Seq)
	b = appendU16(b, uint16(len(m.Outputs)))
	for _, out := range m.Outputs {
		b = appendStr(b, out.Name)
		b = appendU32(b, uint32(len(out.Wins)))
		for _, w := range out.Wins {
			b = AppendWindow(b, w)
		}
	}
	return b
}
func (m *Result) decode(r *reader) {
	m.SID = r.u64("result sid")
	m.Seq = r.i64("result seq")
	n := int(r.u16("result output count"))
	for i := 0; i < n && r.err == nil; i++ {
		out := NamedWindows{Name: r.str("result output name")}
		wn := int(r.u32("result window count"))
		if r.err == nil && (wn < 0 || wn > maxWins) {
			r.err = corruptf("result window count %d out of range", wn)
		}
		for j := 0; j < wn && r.err == nil; j++ {
			out.Wins = append(out.Wins, decodeWindow(r))
		}
		m.Outputs = append(m.Outputs, out)
	}
	if r.err != nil {
		for _, out := range m.Outputs {
			for _, w := range out.Wins {
				w.Release()
			}
		}
		m.Outputs = nil
	}
}

// Credit returns N feed credits to the frontend (worker → frontend):
// the worker grants one per result delivered, so the frontend's credit
// balance mirrors the runtime session's fed-minus-collected bound.
type Credit struct {
	SID uint64
	N   uint32
}

func (*Credit) Type() MsgType { return TypeCredit }
func (m *Credit) append(b []byte) []byte {
	b = appendU64(b, m.SID)
	return appendU32(b, m.N)
}
func (m *Credit) decode(r *reader) {
	m.SID = r.u64("credit sid")
	m.N = r.u32("credit n")
}

// CloseSession asks the worker to finish the session: remaining fed
// frames run to completion and their results flush before
// SessionClosed confirms.
type CloseSession struct {
	SID uint64
}

func (*CloseSession) Type() MsgType            { return TypeCloseSession }
func (m *CloseSession) append(b []byte) []byte { return appendU64(b, m.SID) }
func (m *CloseSession) decode(r *reader)       { m.SID = r.u64("close sid") }

// SessionClosed reports a session's end — an answer to CloseSession,
// or unsolicited when the session failed or the worker is draining.
type SessionClosed struct {
	SID       uint64
	Completed int64
	Err       string
}

func (*SessionClosed) Type() MsgType { return TypeSessionClosed }
func (m *SessionClosed) append(b []byte) []byte {
	b = appendU64(b, m.SID)
	b = appendI64(b, m.Completed)
	return appendStr(b, m.Err)
}
func (m *SessionClosed) decode(r *reader) {
	m.SID = r.u64("closed sid")
	m.Completed = r.i64("closed completed")
	m.Err = r.str("closed err")
}

// Error reports a failure scoped to one session (SID non-zero) or to
// the whole connection (SID zero, after which the sender closes it).
type Error struct {
	SID uint64
	Msg string
}

func (*Error) Type() MsgType { return TypeError }
func (m *Error) append(b []byte) []byte {
	b = appendU64(b, m.SID)
	return appendStr(b, m.Msg)
}
func (m *Error) decode(r *reader) {
	m.SID = r.u64("error sid")
	m.Msg = r.str("error msg")
}

// Ping is the frontend's liveness probe; the worker echoes the nonce
// back in a Pong.
type Ping struct{ Nonce uint64 }

func (*Ping) Type() MsgType            { return TypePing }
func (m *Ping) append(b []byte) []byte { return appendU64(b, m.Nonce) }
func (m *Ping) decode(r *reader)       { m.Nonce = r.u64("ping nonce") }

// Pong answers Ping.
type Pong struct{ Nonce uint64 }

func (*Pong) Type() MsgType            { return TypePong }
func (m *Pong) append(b []byte) []byte { return appendU64(b, m.Nonce) }
func (m *Pong) decode(r *reader)       { m.Nonce = r.u64("pong nonce") }

// Goaway tells the frontend to stop placing sessions on this worker
// (graceful drain); existing sessions keep running until closed.
type Goaway struct{ Reason string }

func (*Goaway) Type() MsgType            { return TypeGoaway }
func (m *Goaway) append(b []byte) []byte { return appendStr(b, m.Reason) }
func (m *Goaway) decode(r *reader)       { m.Reason = r.str("goaway reason") }

// Register announces a worker to a frontend's fleet registry (worker →
// frontend, over a registration connection the worker dialed — the
// inversion of the session plane, where the frontend dials the worker's
// data address). Addr is the data-plane address frontends connect to
// for sessions; CyclesPerSec is the worker's execution capacity in the
// machine model's cycles/sec (PEs × PE clock), the unit the analysis
// prices pipelines in, so admission control can compare fleet capacity
// against projected pipeline load directly. Pipelines inventories the
// worker's compiled-pipeline cache.
type Register struct {
	Name         string
	Addr         string
	CyclesPerSec float64
	Executor     string
	Pipelines    []string
}

func (*Register) Type() MsgType { return TypeRegister }
func (m *Register) append(b []byte) []byte {
	b = appendStr(b, m.Name)
	b = appendStr(b, m.Addr)
	b = appendF64(b, m.CyclesPerSec)
	b = appendStr(b, m.Executor)
	b = appendU32(b, uint32(len(m.Pipelines)))
	for _, p := range m.Pipelines {
		b = appendStr(b, p)
	}
	return b
}
func (m *Register) decode(r *reader) {
	m.Name = r.str("register name")
	m.Addr = r.str("register addr")
	m.CyclesPerSec = r.f64("register capacity")
	m.Executor = r.str("register executor")
	n := int(r.u32("register pipeline count"))
	if r.err != nil {
		return
	}
	if n > maxStr {
		r.err = corruptf("register pipeline count %d out of range", n)
		return
	}
	for i := 0; i < n && r.err == nil; i++ {
		m.Pipelines = append(m.Pipelines, r.str("register pipeline"))
	}
}

// RegisterAck answers Register. LeaseMs is the membership lease the
// frontend granted: the worker must heartbeat within it or be evicted
// from the fleet (and from every frontend's placement ring).
type RegisterAck struct {
	Err     string
	LeaseMs uint32
}

func (*RegisterAck) Type() MsgType { return TypeRegisterAck }
func (m *RegisterAck) append(b []byte) []byte {
	b = appendStr(b, m.Err)
	return appendU32(b, m.LeaseMs)
}
func (m *RegisterAck) decode(r *reader) {
	m.Err = r.str("register-ack err")
	m.LeaseMs = r.u32("register-ack lease-ms")
}

// Heartbeat renews a registration lease (worker → frontend) and
// reports the worker's current load, so /metrics can show fleet
// utilization without a second connection. Draining (protocol v7)
// announces planned maintenance: the frontend stops placing new
// sessions on the worker and migrates resident ones off it, while the
// lease keeps renewing until the drain completes.
type Heartbeat struct {
	Sessions     uint32
	CyclesPerSec float64 // projected load of the sessions currently placed here
	Draining     bool
}

func (*Heartbeat) Type() MsgType { return TypeHeartbeat }
func (m *Heartbeat) append(b []byte) []byte {
	b = appendU32(b, m.Sessions)
	b = appendF64(b, m.CyclesPerSec)
	var flags byte
	if m.Draining {
		flags = 1
	}
	return append(b, flags)
}
func (m *Heartbeat) decode(r *reader) {
	m.Sessions = r.u32("heartbeat sessions")
	m.CyclesPerSec = r.f64("heartbeat load")
	flags := r.u8("heartbeat flags")
	if r.err == nil && flags > 1 {
		r.err = corruptf("heartbeat flags %#x out of range", flags)
		return
	}
	m.Draining = flags == 1
}

// Deregister removes the worker from the fleet immediately (worker →
// frontend, on graceful drain). The frontend stops placing sessions on
// the worker and — critically — cancels its reconnect loop, so a
// drained worker is not pinged forever at a dead address.
type Deregister struct {
	Reason string
}

func (*Deregister) Type() MsgType            { return TypeDeregister }
func (m *Deregister) append(b []byte) []byte { return appendStr(b, m.Reason) }
func (m *Deregister) decode(r *reader)       { m.Reason = r.str("deregister reason") }

// newMsg returns an empty message of the given type.
func newMsg(t MsgType) Msg {
	switch t {
	case TypeHello:
		return &Hello{}
	case TypeWelcome:
		return &Welcome{}
	case TypeEnsurePipeline:
		return &EnsurePipeline{}
	case TypePipelineReady:
		return &PipelineReady{}
	case TypeOpenSession:
		return &OpenSession{}
	case TypeSessionOpened:
		return &SessionOpened{}
	case TypeFeed:
		return &Feed{}
	case TypeResult:
		return &Result{}
	case TypeCredit:
		return &Credit{}
	case TypeCloseSession:
		return &CloseSession{}
	case TypeSessionClosed:
		return &SessionClosed{}
	case TypeError:
		return &Error{}
	case TypePing:
		return &Ping{}
	case TypePong:
		return &Pong{}
	case TypeGoaway:
		return &Goaway{}
	case TypeOpenPartition:
		return &OpenPartition{}
	case TypeEdgeFrame:
		return &EdgeFrame{}
	case TypeEdgeCredit:
		return &EdgeCredit{}
	case TypeRegister:
		return &Register{}
	case TypeRegisterAck:
		return &RegisterAck{}
	case TypeHeartbeat:
		return &Heartbeat{}
	case TypeDeregister:
		return &Deregister{}
	case TypeReopenPartition:
		return &ReopenPartition{}
	default:
		return nil
	}
}

// Decode parses one frame body (the type byte's payload) into a
// message. Decoded windows come from the frame arena; on error all
// partially-decoded windows have been released.
func Decode(t MsgType, payload []byte) (Msg, error) {
	m := newMsg(t)
	if m == nil {
		return nil, corruptf("unknown frame type %d", t)
	}
	r := &reader{b: payload}
	m.decode(r)
	if err := r.finish(); err != nil {
		// The per-message decoders release on their own errors, but a
		// trailing-bytes failure surfaces only here, after a decode
		// that pulled windows from the arena succeeded.
		releaseMsgWindows(m)
		return nil, fmt.Errorf("%s: %w", t, err)
	}
	return m, nil
}

// releaseMsgWindows returns every pooled window a decoded message owns
// to the arena. Safe to call after the decoders' own error cleanup:
// they nil the slices they release.
func releaseMsgWindows(m Msg) {
	switch m := m.(type) {
	case *Feed:
		releaseWindows(m.Inputs)
		m.Inputs = nil
	case *Result:
		for _, out := range m.Outputs {
			for _, w := range out.Wins {
				w.Release()
			}
		}
		m.Outputs = nil
	case *EdgeFrame:
		releaseItems(m.Items)
		m.Items = nil
	}
}

// checkEncodable rejects messages whose element counts overflow their
// wire fields, before any bytes are emitted: a u16 count that silently
// truncated would produce a frame the peer decodes as trailing garbage,
// tearing down the whole connection instead of failing the one send.
func checkEncodable(m Msg) error {
	switch m := m.(type) {
	case *Feed:
		if len(m.Inputs) > math.MaxUint16 {
			return fmt.Errorf("wire: feed carries %d inputs, max %d", len(m.Inputs), math.MaxUint16)
		}
	case *Result:
		if len(m.Outputs) > math.MaxUint16 {
			return fmt.Errorf("wire: result carries %d outputs, max %d", len(m.Outputs), math.MaxUint16)
		}
	case *OpenPartition:
		if len(m.Nodes) > math.MaxUint16 {
			return fmt.Errorf("wire: open-partition carries %d nodes, max %d", len(m.Nodes), math.MaxUint16)
		}
		if len(m.Edges) > math.MaxUint16 {
			return fmt.Errorf("wire: open-partition carries %d edges, max %d", len(m.Edges), math.MaxUint16)
		}
	case *ReopenPartition:
		if len(m.Nodes) > math.MaxUint16 {
			return fmt.Errorf("wire: reopen-partition carries %d nodes, max %d", len(m.Nodes), math.MaxUint16)
		}
		if len(m.Edges) > math.MaxUint16 {
			return fmt.Errorf("wire: reopen-partition carries %d edges, max %d", len(m.Edges), math.MaxUint16)
		}
		if len(m.Resume) > math.MaxUint16 {
			return fmt.Errorf("wire: reopen-partition carries %d resume marks, max %d", len(m.Resume), math.MaxUint16)
		}
	case *EdgeFrame:
		if len(m.Items) > math.MaxUint16 {
			return fmt.Errorf("wire: edge-frame carries %d items, max %d", len(m.Items), math.MaxUint16)
		}
	}
	return nil
}

// Append encodes a message as a complete frame — u32 length, u8 type,
// payload — appended to b.
func Append(b []byte, m Msg) []byte {
	start := len(b)
	b = appendU32(b, 0) // length backfilled below
	b = append(b, byte(m.Type()))
	b = m.append(b)
	binary.BigEndian.PutUint32(b[start:], uint32(len(b)-start-4))
	return b
}
